"""Fault-injection conformance: misbehaving services never corrupt answers.

Uses the :mod:`repro.testing.faults` kit to corrupt service pages on a
seeded, call-order-independent schedule, then runs the same plan down
three paths — demand-driven lazy streaming, eager streaming, and the
full-scan ``PARALLEL`` oracle — over the *same* faulted world:

* data faults (truncated pages, duplicated tuples, out-of-order
  ranks) keep rank floors sound, so all three paths must stay
  **bit-identical**: a lazily skipped page can never hide the
  corruption-induced answer changes the oracle sees;
* page failures must surface as a clean :class:`InjectedFault` —
  a path either raises or returns the exact certified answer for the
  faulted world; silently dropping answers is the one forbidden
  outcome (if the oracle succeeded, every page the lazy path touches
  is a subset of the oracle's, so the lazy path must succeed with the
  identical answer).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing.faults import (
    FAULT_KINDS,
    FaultSchedule,
    FlakyService,
    InjectedFault,
    wrap_registry_flaky,
)
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.results import compose_ranking
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService


def _signature(rows):
    return [(dict(r.bindings), r.ranks) for r in rows]


def _pair_plan(side=9, chunk=2, fetches=5):
    """Two single-feed search services, merged at the final join."""
    registry = ServiceRegistry()
    for name, var in (("lefts", "L"), ("rights", "R")):
        registry.register(
            TableSearchService(
                signature(name, ["Q", "K", var], ["ioo"]),
                search_profile(chunk_size=chunk, response_time=1.0),
                [("q", i % 3, i) for i in range(side)],
                score=lambda row: float(-row[2]),
            )
        )
    registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
    key, lv, rv = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="flakypair",
        head=(key, lv, rv),
        atoms=(
            Atom("lefts", (Constant("q"), key, lv)),
            Atom("rights", (Constant("q"), key, rv)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: fetches, 1: fetches},
    )
    return registry, tuple(query.head), plan


def _serial_plan(feeds=3, per=6, chunk=2, fetches=3):
    """feeder → multi-feed lefts, joined with single-feed rights."""
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            signature("feeder", ["Q", "X"], ["io"]),
            search_profile(chunk_size=4, response_time=1.0),
            [("q", x) for x in range(feeds)],
            score=lambda row: float(-row[1]),
        )
    )
    registry.register(
        TableSearchService(
            signature("lefts", ["X", "K", "L"], ["ioo"]),
            search_profile(chunk_size=chunk, response_time=1.0),
            [(x, i % 3, i) for x in range(feeds) for i in range(per)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register(
        TableSearchService(
            signature("rights", ["Q", "K", "R"], ["ioo"]),
            search_profile(chunk_size=chunk, response_time=1.0),
            [("q", i % 3, i) for i in range(per)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
    key = Variable("K")
    x, lv, rv = Variable("X"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="flakyserial",
        head=(key, lv, rv),
        atoms=(
            Atom("feeder", (Constant("q"), x)),
            Atom("lefts", (x, key, lv)),
            Atom("rights", (Constant("q"), key, rv)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("feeder").pattern("io"),
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=3, pairs=frozenset({(0, 1)})),
        fetches={0: 2, 1: fetches, 2: fetches},
    )
    return registry, tuple(query.head), plan


PLAN_SHAPES = {"pair": _pair_plan, "serial": _serial_plan}


class TestFaultSchedule:
    def test_decisions_are_call_order_independent(self):
        schedule = FaultSchedule(
            seed=7, fail_rate=0.18, truncate_rate=0.18, duplicate_rate=0.18,
            reorder_rate=0.18, delay_rate=0.18,
        )
        first = [
            schedule.decide("svc", "ioo", {0: "q"}, page) for page in range(50)
        ]
        again = [
            schedule.decide("svc", "ioo", {0: "q"}, page)
            for page in reversed(range(50))
        ]
        assert first == list(reversed(again))
        # With 90% fault mass over 50 draws, every kind should appear.
        assert set(first) >= set(FAULT_KINDS)

    def test_zero_rates_never_inject(self):
        schedule = FaultSchedule(seed=3)
        assert all(
            schedule.decide("svc", "ioo", {0: "q"}, page) is None
            for page in range(30)
        )


class TestFlakyServiceUnits:
    def _service(self):
        return TableSearchService(
            signature("spots", ["Q", "S"], ["io"]),
            search_profile(chunk_size=3, response_time=1.0),
            [("q", i) for i in range(7)],
            score=lambda row: float(-row[1]),
        )

    def _invoke(self, schedule, page=0):
        inner = self._service()
        flaky = FlakyService(inner, schedule)
        pattern = inner.signature.pattern("io")
        clean = inner.invoke(pattern, {0: "q"}, page=page)
        return clean, flaky.invoke(pattern, {0: "q"}, page=page), flaky

    def test_truncate_drops_the_last_tuple(self):
        clean, faulted, flaky = self._invoke(
            FaultSchedule(seed=1, truncate_rate=1.0)
        )
        assert faulted.tuples == clean.tuples[:-1]
        assert faulted.ranks == clean.ranks[:-1]
        assert faulted.has_more == clean.has_more
        assert flaky.injected["truncate"] == 1

    def test_duplicate_repeats_the_last_tuple(self):
        clean, faulted, _ = self._invoke(
            FaultSchedule(seed=1, duplicate_rate=1.0)
        )
        assert faulted.tuples == clean.tuples + (clean.tuples[-1],)
        assert faulted.ranks == clean.ranks + (clean.ranks[-1],)

    def test_reorder_reverses_the_page(self):
        clean, faulted, _ = self._invoke(
            FaultSchedule(seed=1, reorder_rate=1.0)
        )
        assert faulted.tuples == tuple(reversed(clean.tuples))
        assert faulted.ranks == tuple(reversed(clean.ranks))

    def test_fail_raises_injected_fault(self):
        with pytest.raises(InjectedFault):
            self._invoke(FaultSchedule(seed=1, fail_rate=1.0))

    def test_wrapper_delegates_everything_else(self):
        inner = self._service()
        flaky = FlakyService(inner, FaultSchedule(seed=1))
        assert flaky.name == "spots"
        assert flaky.signature is inner.signature
        assert flaky.profile is inner.profile
        flaky.reset()  # must reach the inner latency model


class TestDataFaultsStayOracleEquivalent:
    """Truncate/duplicate/reorder keep every path bit-identical."""

    @given(
        st.integers(0, 10**6),
        st.sampled_from(sorted(PLAN_SHAPES)),
        st.integers(0, 12),
    )
    @settings(max_examples=40, deadline=None)
    def test_lazy_equals_eager_equals_oracle(self, seed, shape, k):
        registry, head, plan = PLAN_SHAPES[shape]()
        schedule = FaultSchedule(
            seed=seed, truncate_rate=0.25, duplicate_rate=0.2,
            reorder_rate=0.2,
        )
        wrappers = wrap_registry_flaky(registry, schedule)
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=k
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=k)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        expected = compose_ranking(oracle.rows, k)
        assert _signature(lazy.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        # The oracle's full fetch must have exercised the injection.
        assert sum(w.injected.total() for w in wrappers.values()) > 0
        # Lazy still never fetches beyond the (faulted) eager universe.
        assert lazy.stats.total_fetches <= eager.stats.total_fetches

    def test_out_of_order_ranks_trip_the_monotonicity_guard(self):
        """A reordered page makes the owning block non-monotone: the
        lazy cursor must drain it (full-fetch fallback) rather than
        trust its floor — and the answers stay exact."""
        registry, head, plan = _pair_plan(side=12, chunk=3, fetches=4)
        wrap_registry_flaky(
            registry, FaultSchedule(seed=11, reorder_rate=1.0)
        )
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=2
        )
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        assert _signature(lazy.rows) == _signature(
            compose_ranking(oracle.rows, 2)
        )


class TestPageFailures:
    """Failures surface cleanly; they never silently drop answers."""

    @given(
        st.integers(0, 10**6),
        st.sampled_from(sorted(PLAN_SHAPES)),
        st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_fail_or_match_never_silently_diverge(self, seed, shape, k):
        registry, head, plan = PLAN_SHAPES[shape]()
        schedule = FaultSchedule(seed=seed, fail_rate=0.15)
        wrap_registry_flaky(registry, schedule)

        def run(engine_kwargs):
            engine = ExecutionEngine(registry, **engine_kwargs)
            try:
                return engine.execute(plan, head=head, k=k), None
            except InjectedFault as fault:
                return None, fault

        oracle, oracle_fault = run({"mode": ExecutionMode.PARALLEL})
        lazy, lazy_fault = run({"mode": ExecutionMode.STREAMED})
        if lazy is not None and oracle is not None:
            # Both survived: the lazy path saw a subset of the pages
            # the oracle fetched, and must agree bit-for-bit.
            assert _signature(lazy.rows) == _signature(
                compose_ranking(oracle.rows, k)
            )
        if oracle_fault is None:
            # Every page the lazy walk can demand is clean, so the
            # lazy path may not fail — and (above) may not diverge.
            assert lazy_fault is None
        # lazy failed: acceptable only as a clean InjectedFault, which
        # the except clause already guarantees (anything else — a
        # wrong answer, a swallowed error — fails this test).

    def test_poisoned_first_page_raises_on_every_path(self):
        registry, head, plan = _pair_plan()
        wrap_registry_flaky(registry, FaultSchedule(seed=5, fail_rate=1.0))
        for kwargs in (
            {"mode": ExecutionMode.PARALLEL},
            {"mode": ExecutionMode.STREAMED},
            {"mode": ExecutionMode.STREAMED, "lazy_streaming": False},
        ):
            with pytest.raises(InjectedFault):
                ExecutionEngine(registry, **kwargs).execute(
                    plan, head=head, k=1
                )
