"""Unit tests for phase 2: poset enumeration and heuristics.

Includes the headline count of Example 5.1: once conf is forced first,
the three remaining atoms admit exactly 19 plans — the number of
partial orders on 3 labeled elements.
"""

import pytest

from repro.model.atoms import atom
from repro.model.query import query
from repro.model.schema import schema_of, signature
from repro.model.terms import Variable
from repro.optimizer.topology import (
    TopologyEnumerator,
    atom_callable_after,
    count_posets,
    heuristic_posets,
    maximal_parallel,
    selective_chain,
)
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
)


@pytest.fixture()
def travel_setup():
    return running_example_query(), alpha1_patterns()


class TestCallableAfter:
    def test_conf_directly_callable(self, travel_setup):
        q, patterns = travel_setup
        assert atom_callable_after(q, patterns, CONF_ATOM, frozenset())

    def test_others_not_directly_callable(self, travel_setup):
        q, patterns = travel_setup
        for index in (FLIGHT_ATOM, HOTEL_ATOM, WEATHER_ATOM):
            assert not atom_callable_after(q, patterns, index, frozenset())

    def test_all_callable_after_conf(self, travel_setup):
        q, patterns = travel_setup
        for index in (FLIGHT_ATOM, HOTEL_ATOM, WEATHER_ATOM):
            assert atom_callable_after(q, patterns, index, frozenset({CONF_ATOM}))


class TestExample51Count:
    def test_19_posets_for_running_example(self, travel_setup):
        """Example 5.1: 'there are 19 alternative plans'."""
        q, patterns = travel_setup
        assert count_posets(q, patterns) == 19

    def test_unconstrained_three_atoms_also_19(self):
        # Sanity check against the known number of posets on 3 elements.
        schema = schema_of(
            [signature(name, ["X"], ["o"]) for name in ("a", "b", "c")]
        )
        q = query(
            "q", [Variable("X")],
            [atom("a", "X"), atom("b", "Y"), atom("c", "Z")],
        )
        del schema
        patterns = tuple(
            signature(name, ["X"], ["o"]).pattern("o") for name in ("a", "b", "c")
        )
        assert count_posets(q, patterns) == 19

    def test_two_unconstrained_atoms_give_3(self):
        q = query("q", [Variable("X")], [atom("a", "X"), atom("b", "Y")])
        patterns = tuple(
            signature(name, ["X"], ["o"]).pattern("o") for name in ("a", "b")
        )
        assert count_posets(q, patterns) == 3  # a<b, b<a, parallel

    def test_paper_plans_are_among_the_19(self, travel_setup):
        q, patterns = travel_setup
        closures = {p.closure() for p in TopologyEnumerator(q, patterns).all_posets()}
        for named in (poset_serial(), poset_parallel(), poset_optimal()):
            assert named.closure() in closures


class TestEnumeratorMechanics:
    def test_extensions_respect_callability(self, travel_setup):
        q, patterns = travel_setup
        enumerator = TopologyEnumerator(q, patterns)
        first_steps = list(enumerator.extensions(enumerator.initial_state))
        placed = {tuple(sorted(state[0])) for state in first_steps}
        assert placed == {(CONF_ATOM,)}  # only conf can start

    def test_complete_detection(self, travel_setup):
        q, patterns = travel_setup
        enumerator = TopologyEnumerator(q, patterns)
        assert not enumerator.is_complete(enumerator.initial_state)
        full = (frozenset(range(4)), frozenset())
        assert enumerator.is_complete(full)

    def test_partial_poset_remaps_indices(self, travel_setup):
        q, patterns = travel_setup
        enumerator = TopologyEnumerator(q, patterns)
        state = (frozenset({CONF_ATOM, WEATHER_ATOM}),
                 frozenset({(CONF_ATOM, WEATHER_ATOM)}))
        sub = enumerator.poset_of(state)
        assert sub.n == 2
        assert sub.closure() == frozenset({(0, 1)})


class TestHeuristics:
    def test_selective_chain_order(self, registry, travel_setup):
        q, patterns = travel_setup
        poset = selective_chain(q, patterns, registry)
        assert poset.is_chain()
        closure = poset.closure()
        # conf first (only callable), then weather (erspi 1 < chunks).
        assert (CONF_ATOM, WEATHER_ATOM) in closure
        assert (WEATHER_ATOM, FLIGHT_ATOM) in closure
        assert (WEATHER_ATOM, HOTEL_ATOM) in closure

    def test_selective_chain_matches_plan_s(self, registry, travel_setup):
        q, patterns = travel_setup
        poset = selective_chain(q, patterns, registry)
        # hotel (chunk 5) before flight (chunk 25) by effective erspi:
        # the paper's S orders weather, flight, hotel; both are valid
        # "increasing erspi" chains — ours picks the smaller chunk
        # first. Assert the serial shape and the weather-first prefix.
        assert poset.is_chain()
        assert poset.predecessors_of(WEATHER_ATOM) == {CONF_ATOM}

    def test_maximal_parallel_matches_plan_p(self, travel_setup):
        q, patterns = travel_setup
        poset = maximal_parallel(q, patterns)
        assert poset.closure() == poset_parallel().closure()

    def test_heuristics_bundle(self, registry, travel_setup):
        q, patterns = travel_setup
        bundle = heuristic_posets(q, patterns, registry)
        assert len(bundle.candidates()) == 2

    def test_non_permissible_patterns_raise(self, registry):
        q = running_example_query()
        schema_sig = signature("conf", ["T", "N", "S", "E", "C"], ["ooooi"])
        bad = (
            alpha1_patterns()[0],
            alpha1_patterns()[1],
            schema_sig.pattern("ooooi"),
            alpha1_patterns()[3],
        )
        with pytest.raises(ValueError):
            selective_chain(q, bad, registry)
        with pytest.raises(ValueError):
            maximal_parallel(q, bad)
