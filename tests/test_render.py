"""Unit tests for plan rendering (ASCII, DOT, summaries)."""

import pytest

from repro.execution.cache import CacheSetting
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.plans.render import render_ascii, render_dot, summarize
from repro.sources.travel import alpha1_patterns, poset_optimal, poset_serial


@pytest.fixture()
def plan_o(registry, travel_query):
    return PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_optimal(), fetches={0: 3, 1: 4}
    )


class TestAscii:
    def test_contains_all_services(self, plan_o):
        text = render_ascii(plan_o)
        for name in ("conf", "weather", "flight", "hotel"):
            assert name in text

    def test_marks_chunked_and_fetches(self, plan_o):
        text = render_ascii(plan_o)
        assert "F=3" in text and "F=4" in text
        assert "|" in text  # chunked box marker

    def test_annotation_included_when_given(self, plan_o):
        annotation = annotate(plan_o, CacheSetting.ONE_CALL)
        text = render_ascii(plan_o, annotation)
        assert "t_in=1500" in text  # the MS join candidate pairs

    def test_starts_with_input(self, plan_o):
        assert render_ascii(plan_o).splitlines()[0].strip() == "IN"


class TestDot:
    def test_valid_digraph(self, plan_o):
        text = render_dot(plan_o)
        assert text.startswith("digraph plan {")
        assert text.rstrip().endswith("}")

    def test_one_edge_line_per_arc(self, plan_o):
        text = render_dot(plan_o)
        edges = [line for line in text.splitlines() if "->" in line]
        assert len(edges) == len(plan_o.arcs())

    def test_join_is_diamond(self, plan_o):
        assert "diamond" in render_dot(plan_o)


class TestSummarize:
    def test_optimal_plan_summary(self, plan_o):
        assert summarize(plan_o) in (
            "conf -> weather -> flight -> hotel -> MS",
            "conf -> weather -> hotel -> flight -> MS",
        )

    def test_serial_plan_summary(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_serial()
        )
        assert summarize(plan) == "conf -> weather -> flight -> hotel"
