"""Cache-setting hierarchy across the whole plan space.

For every one of the 19 topologies of the running example and every
service, the engine must issue

    calls(optimal) <= calls(one-call) <= calls(no-cache)

and all three settings must return the same answers — the execution-
level counterpart of Section 5.1.
"""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    running_example_query,
    travel_registry,
)

_REGISTRY = travel_registry()
_QUERY = running_example_query()
_POSETS = TopologyEnumerator(_QUERY, alpha1_patterns()).all_posets()
_BUILDER = PlanBuilder(_QUERY, _REGISTRY)


@pytest.fixture(scope="module", params=range(len(_POSETS)))
def executed(request):
    plan = _BUILDER.build(
        alpha1_patterns(), _POSETS[request.param],
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
    )
    outcomes = {}
    for setting in CacheSetting:
        engine = ExecutionEngine(_REGISTRY, cache_setting=setting)
        outcomes[setting] = engine.execute(plan, head=_QUERY.head)
    return outcomes


class TestHierarchy:
    def test_calls_ordering_per_service(self, executed):
        for name in ("conf", "weather", "flight", "hotel"):
            optimal = executed[CacheSetting.OPTIMAL].stats.calls(name)
            one_call = executed[CacheSetting.ONE_CALL].stats.calls(name)
            no_cache = executed[CacheSetting.NO_CACHE].stats.calls(name)
            assert optimal <= one_call <= no_cache, name

    def test_answers_identical_across_settings(self, executed):
        reference = frozenset(executed[CacheSetting.NO_CACHE].answers(None))
        for setting in (CacheSetting.ONE_CALL, CacheSetting.OPTIMAL):
            assert frozenset(executed[setting].answers(None)) == reference

    def test_elapsed_never_increases_with_caching(self, executed):
        no = executed[CacheSetting.NO_CACHE].elapsed
        one = executed[CacheSetting.ONE_CALL].elapsed
        optimal = executed[CacheSetting.OPTIMAL].elapsed
        assert optimal <= one + 1e-9 <= no + 1e-9

    def test_cache_hits_complement_calls(self, executed):
        """Hits + calls is constant across settings (same tuple flow)."""
        totals = {}
        for setting, outcome in executed.items():
            totals[setting] = (
                outcome.stats.total_calls + outcome.stats.total_cache_hits
            )
        assert len(set(totals.values())) == 1
