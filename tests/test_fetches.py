"""Unit tests for phase 3: fetch assignment (Section 4.3, Eq. 5-7)."""

import pytest

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.fetches import (
    FetchContext,
    assign_fetches,
    closed_form_pair,
    closed_form_single,
    exhaustive_assignment,
    greedy_assignment,
    square_assignment,
)
from repro.plans.builder import PlanBuilder, chain_poset
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_serial,
)


@pytest.fixture()
def context_o(registry, travel_query):
    plan = PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_optimal()
    )
    return FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)


@pytest.fixture()
def context_s(registry, travel_query):
    plan = PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_serial()
    )
    return FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)


class TestContext:
    def test_chunked_atoms(self, context_o):
        assert context_o.chunked_atoms == (FLIGHT_ATOM, HOTEL_ATOM)

    def test_output_size_multiplicative(self, context_o):
        base = context_o.output_size({FLIGHT_ATOM: 1, HOTEL_ATOM: 1})
        assert context_o.output_size(
            {FLIGHT_ATOM: 2, HOTEL_ATOM: 3}
        ) == pytest.approx(base * 6)

    def test_fast_output_matches_annotation(self, context_o):
        for fetches in ({FLIGHT_ATOM: 1, HOTEL_ATOM: 1}, {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}):
            fast = context_o.output_size(fetches)
            exact = context_o.annotate(fetches).output_size
            assert fast == pytest.approx(exact)

    def test_invalid_factor_rejected(self, context_o):
        with pytest.raises(ValueError):
            context_o.apply({FLIGHT_ATOM: 0})

    def test_evaluate_reports_feasibility(self, context_o):
        low = context_o.evaluate({FLIGHT_ATOM: 1, HOTEL_ATOM: 1}, k=10)
        assert not low.feasible
        high = context_o.evaluate({FLIGHT_ATOM: 3, HOTEL_ATOM: 4}, k=10)
        assert high.feasible
        assert high.output_size == pytest.approx(15.0)


class TestClosedForms:
    def test_eq6_reproduces_figure8(self, context_o):
        """Eq. 6 with k=10 gives F_flight=3, F_hotel=4 (Figure 8)."""
        result = closed_form_pair(context_o, k=10)
        assert result.fetches == {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}
        assert result.feasible

    def test_eq7_pushes_fetches_downstream(self, context_s):
        """On the same path, Eq. 7 sets the upstream factor to 1."""
        result = closed_form_pair(context_s, k=10)
        assert result.fetches[FLIGHT_ATOM] == 1
        assert result.fetches[HOTEL_ATOM] == 8  # K' = ceil(10 / 1.25)
        assert result.feasible

    def test_eq5_single_chunked_service(self, tiny_registry, tiny_query):
        plan = PlanBuilder(tiny_query, tiny_registry).build(
            (
                tiny_registry.signature("cities").pattern("io"),
                tiny_registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.NO_CACHE)
        # h(F) = 3 cities * 2 chunk * 0.8 selectivity * F = 4.8 F
        result = closed_form_single(context, k=10)
        assert result.fetches == {1: 3}  # ceil(10 / 4.8)
        assert result.feasible

    def test_closed_form_arity_checked(self, context_o, tiny_registry, tiny_query):
        with pytest.raises(ValueError):
            closed_form_single(context_o, k=10)
        plan = PlanBuilder(tiny_query, tiny_registry).build(
            (
                tiny_registry.signature("cities").pattern("io"),
                tiny_registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.NO_CACHE)
        with pytest.raises(ValueError):
            closed_form_pair(context, k=10)


class TestHeuristics:
    def test_greedy_reaches_k(self, context_o):
        result = greedy_assignment(context_o, k=10)
        assert result.feasible
        assert result.output_size >= 10

    def test_greedy_all_ones_when_enough(self, context_o):
        result = greedy_assignment(context_o, k=1)
        assert result.fetches == {FLIGHT_ATOM: 1, HOTEL_ATOM: 1}

    def test_square_equalizes_explored_tuples(self, context_o):
        result = square_assignment(context_o, k=10)
        assert result.feasible
        explored_flight = result.fetches[FLIGHT_ATOM] * 25
        explored_hotel = result.fetches[HOTEL_ATOM] * 5
        # Equal up to one chunk of the larger service.
        assert abs(explored_flight - explored_hotel) <= 25

    def test_square_feasibility(self, context_s):
        result = square_assignment(context_s, k=10)
        assert result.feasible


class TestExhaustive:
    def test_exhaustive_at_least_as_good_as_greedy(self, context_o):
        greedy = greedy_assignment(context_o, k=10)
        exhaustive = exhaustive_assignment(context_o, k=10)
        assert exhaustive.feasible
        assert exhaustive.cost <= greedy.cost + 1e-9

    def test_exhaustive_minimality(self, context_o):
        best = exhaustive_assignment(context_o, k=10)
        # Decrementing any coordinate must lose feasibility or not be
        # cheaper: verify the chosen vector cannot be shrunk and stay
        # feasible at lower cost.
        for atom_index in context_o.chunked_atoms:
            if best.fetches[atom_index] == 1:
                continue
            shrunk = dict(best.fetches)
            shrunk[atom_index] -= 1
            trial = context_o.evaluate(shrunk, k=10)
            assert (not trial.feasible) or trial.cost >= best.cost - 1e-9

    def test_exhaustive_matches_eq6_cost(self, context_o):
        pair = closed_form_pair(context_o, k=10)
        best = exhaustive_assignment(context_o, k=10)
        assert best.cost <= pair.cost + 1e-9


class TestDecayCaps:
    def test_decay_limits_fetching(self, tiny_query):
        from repro.model.schema import signature
        from repro.services.profile import exact_profile, search_profile
        from repro.services.registry import ServiceRegistry
        from repro.services.table import TableExactService, TableSearchService

        registry = ServiceRegistry()
        registry.register(
            TableExactService(
                signature("cities", ["Country", "City"], ["io"]),
                exact_profile(erspi=1.0, response_time=1.0),
                [("it", "Roma")],
            )
        )
        registry.register(
            TableSearchService(
                signature("spots", ["City", "Spot", "Score"], ["ioo"]),
                search_profile(chunk_size=2, response_time=1.0, decay=4),
                [("Roma", f"s{i}", 10 - i) for i in range(10)],
                score=lambda row: float(row[2]),
            )
        )
        plan = PlanBuilder(tiny_query, registry).build(
            (
                registry.signature("cities").pattern("io"),
                registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        context = FetchContext(plan, RequestResponseMetric(), CacheSetting.NO_CACHE)
        assert context.cap(1) == 2  # decay 4 / chunk 2
        # h_max = 1 * 2*2 * 0.8 = 3.2 < k: k unreachable, capped result.
        result = assign_fetches(context, k=10)
        assert not result.feasible
        assert result.fetches[1] == 2


class TestAssignFetches:
    def test_greedy_then_explore(self, context_o):
        result = assign_fetches(context_o, k=10, heuristic="greedy", explore=True)
        assert result.feasible

    def test_square_then_explore(self, context_o):
        result = assign_fetches(context_o, k=10, heuristic="square", explore=True)
        assert result.feasible

    def test_unknown_heuristic_rejected(self, context_o):
        with pytest.raises(ValueError):
            assign_fetches(context_o, k=10, heuristic="magic")

    def test_no_chunked_services(self, registry):
        from repro.model.atoms import Atom
        from repro.model.query import ConjunctiveQuery
        from repro.model.terms import Constant, Variable
        from repro.plans.builder import Poset

        q = ConjunctiveQuery(
            name="q",
            head=(Variable("Conf"),),
            atoms=(
                Atom("conf", (Constant("DB"), Variable("Conf"), Variable("S"),
                              Variable("E"), Variable("City"))),
            ),
        )
        plan = PlanBuilder(q, registry).build(
            (registry.signature("conf").pattern("ioooo"),), Poset(n=1)
        )
        context = FetchContext(plan, RequestResponseMetric(), CacheSetting.NO_CACHE)
        result = assign_fetches(context, k=10)
        assert result.fetches == {}
        assert result.feasible  # conf alone yields 20 >= 10
