"""Tests for off-query expansion (Section 7's oldTown example)."""

import pytest

from repro.extensions.expansion import (
    ExpansionError,
    blocked_variables,
    expand_query,
    seeder_candidates,
    variable_domains,
)
from repro.model.atoms import atom
from repro.model.query import query
from repro.model.schema import Schema, schema_of, signature
from repro.model.terms import Variable
from repro.optimizer.patterns import permissible_sequences


@pytest.fixture()
def blocked_schema():
    """weather and hotel both need City in input; oldTown outputs Cities."""
    return schema_of(
        [
            signature("weather", ["City", "Temperature"], ["io"]),
            signature("hotel", ["City", "Name", "Price"], ["ioo"]),
            signature("oldTown", ["City"], ["o"]),
        ]
    )


@pytest.fixture()
def blocked_query():
    return query(
        "q",
        [Variable("City"), Variable("Name")],
        [
            atom("weather", "City", "Temperature"),
            atom("hotel", "City", "Name", "Price"),
        ],
    )


class TestDiagnostics:
    def test_variable_domains(self, blocked_schema, blocked_query):
        domains = variable_domains(blocked_query, blocked_schema)
        assert domains[Variable("City")] == "City"
        assert domains[Variable("Price")] == "Price"

    def test_blocked_variables(self, blocked_schema, blocked_query):
        assert blocked_variables(blocked_query, blocked_schema) == {
            Variable("City")
        }

    def test_seeder_candidates(self, blocked_schema):
        candidates = seeder_candidates(
            blocked_schema, "City", exclude=frozenset({"weather", "hotel"})
        )
        assert [sig.name for sig, _, _ in candidates] == ["oldTown"]

    def test_seeders_must_be_directly_callable(self):
        schema = schema_of(
            [
                signature("weather", ["City", "T"], ["io"]),
                signature("lookup", ["Key", "City"], ["io"]),  # needs input
            ]
        )
        assert seeder_candidates(schema, "City", frozenset({"weather"})) == ()


class TestExpansion:
    def test_expansion_adds_oldtown(self, blocked_schema, blocked_query):
        expanded = expand_query(blocked_query, blocked_schema)
        assert expanded.is_expansion
        assert [a.service for a in expanded.added_atoms] == ["oldTown"]
        # The seeder binds the blocked variable.
        assert Variable("City") in expanded.added_atoms[0].variable_set

    def test_expanded_query_is_executable(self, blocked_schema, blocked_query):
        expanded = expand_query(blocked_query, blocked_schema)
        assert permissible_sequences(expanded.query, blocked_schema)

    def test_executable_query_returned_unchanged(self, blocked_schema):
        fine = query(
            "q", [Variable("City")], [atom("oldTown", "City")]
        )
        expanded = expand_query(fine, blocked_schema)
        assert not expanded.is_expansion
        assert expanded.query is fine

    def test_no_seeder_raises(self, blocked_query):
        schema = schema_of(
            [
                signature("weather", ["City", "Temperature"], ["io"]),
                signature("hotel", ["City", "Name", "Price"], ["ioo"]),
            ]
        )
        with pytest.raises(ExpansionError):
            expand_query(blocked_query, schema)

    def test_expansion_answers_are_subset(self, blocked_schema, blocked_query):
        """Execute both on materialized data: expansion ⊆ original."""
        from repro.execution.engine import execute_plan
        from repro.optimizer.optimizer import optimize_query
        from repro.costs.sum_cost import RequestResponseMetric
        from repro.services.profile import exact_profile
        from repro.services.registry import ServiceRegistry
        from repro.services.table import TableExactService

        registry = ServiceRegistry()
        registry.register(
            TableExactService(
                blocked_schema.get("weather"),
                exact_profile(erspi=1.0, response_time=1.0),
                [("Roma", 30), ("Siena", 25), ("Milano", 20)],
            )
        )
        registry.register(
            TableExactService(
                blocked_schema.get("hotel"),
                exact_profile(erspi=2.0, response_time=1.0),
                [("Roma", "Grand", 100), ("Siena", "Antica", 80),
                 ("Milano", "Duomo Inn", 120)],
            )
        )
        registry.register(
            TableExactService(
                blocked_schema.get("oldTown"),
                exact_profile(erspi=2.0, response_time=1.0),
                [("Roma",), ("Siena",)],  # only a subset of all cities
            )
        )
        expanded = expand_query(blocked_query, blocked_schema)
        best = optimize_query(
            expanded.query, registry, RequestResponseMetric(), k=1
        )
        result = execute_plan(best.plan, registry, head=blocked_query.head)
        answers = set(result.answers())
        # Subset semantics: Milano is a valid answer of the original
        # query but oldTown does not provide it.
        assert answers == {("Roma", "Grand"), ("Siena", "Antica")}
