"""The serving layer: plan cache, sessions, and the QueryService facade.

The heart of the suite is the differential contract of the ISSUE: for
random query templates and ``k`` budgets, a **plan-cache hit** (the
plan rebuilt from its stored spec, executed against the warm shared
service cache) must answer with rows, ranks, and order bit-identical
to a **cold optimize+execute** on a fresh service with empty caches;
and any profile perturbation must bump the registry epoch and force
re-optimization.

Ranks are compared by their *values* (per-service rank indexes and the
composed rank key), not by plan-node labels: node ids come from a
global counter, so two builds of the same plan label their nodes
differently while producing identical answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import ExecutionMode
from repro.plans.spec import PlanSpec
from repro.serving import (
    PlanCache,
    QueryService,
    SessionError,
    SessionManager,
)
from repro.serving.fingerprint import plan_cache_key, query_fingerprint
from repro.sources.news import market_moving_news_query, news_registry
from repro.sources.weekend import mahler_weekend_query, weekend_registry


def _answer_signature(response):
    """Everything answer-identical responses must agree on."""
    return (
        response.columns,
        response.rows,
        response.rank_keys,
        tuple(
            tuple(rank for _, rank in row_ranks) for row_ranks in response.ranks
        ),
        response.complete,
    )


# -- PlanCache --------------------------------------------------------------


def _spec(codes=("io",), pairs=(), fetches=()) -> PlanSpec:
    return PlanSpec(
        pattern_codes=tuple(codes),
        precedence_pairs=tuple(pairs),
        fetches=tuple(fetches),
    )


class TestPlanCache:
    def test_memory_hit_roundtrip(self):
        cache = PlanCache()
        spec = _spec(("io", "oi"), ((0, 1),), ((1, 4),))
        cache.store("key", spec, 12.5, "time", "epoch")
        hit = cache.lookup("key")
        assert hit is not None
        assert hit.spec == spec
        assert hit.cost == 12.5
        assert hit.tier == "memory"
        assert cache.stats.memory_hits == 1

    def test_miss_is_counted(self):
        cache = PlanCache()
        assert cache.lookup("absent") is None
        assert cache.stats.misses == 1

    def test_lru_eviction_is_by_recency(self):
        cache = PlanCache(capacity=2)
        cache.store("a", _spec(), 1.0, "time", "e")
        cache.store("b", _spec(), 2.0, "time", "e")
        assert cache.lookup("a") is not None  # refresh a
        cache.store("c", _spec(), 3.0, "time", "e")  # evicts b
        assert cache.lookup("b") is None
        assert cache.lookup("a") is not None
        assert cache.lookup("c") is not None
        assert cache.stats.evictions == 1

    def test_capacity_zero_disables_the_memory_tier(self):
        cache = PlanCache(capacity=0)
        cache.store("a", _spec(), 1.0, "time", "e")
        assert cache.lookup("a") is None
        assert cache.memory_entries == 0

    @pytest.mark.parametrize("suffix", ["json", "sqlite"])
    def test_disk_tier_survives_a_new_cache_instance(self, tmp_path, suffix):
        path = tmp_path / f"plans.{suffix}"
        spec = _spec(("io",), (), ((0, 2),))
        writer = PlanCache(path=path)
        assert writer.backend_name == suffix
        writer.store("key", spec, 7.0, "requests", "epoch")
        reader = PlanCache(path=path)
        hit = reader.lookup("key")
        assert hit is not None
        assert hit.tier == "disk"
        assert hit.spec == spec
        assert hit.metric == "requests"
        # Promotion: the second lookup is a memory hit.
        assert reader.lookup("key").tier == "memory"

    def test_sequential_sibling_writers_merge_instead_of_clobbering(
        self, tmp_path
    ):
        path = tmp_path / "plans.json"
        # Both processes open the (empty) file before either stores.
        writer_a = PlanCache(path=path)
        writer_b = PlanCache(path=path)
        writer_a.store("k1", _spec(("io",)), 1.0, "time", "e")
        writer_b.store("k2", _spec(("oi",)), 2.0, "time", "e")
        fresh = PlanCache(path=path)
        assert fresh.lookup("k1") is not None
        assert fresh.lookup("k2") is not None

    @pytest.mark.parametrize("suffix", ["json", "sqlite"])
    def test_corrupt_disk_file_is_ignored(self, tmp_path, suffix):
        path = tmp_path / f"plans.{suffix}"
        path.write_text("{not json, and certainly not a database")
        cache = PlanCache(path=path)
        assert cache.disk_entries == 0
        cache.store("key", _spec(), 1.0, "time", "e")
        assert PlanCache(path=path).lookup("key") is not None

    @pytest.mark.parametrize("suffix", ["json", "sqlite"])
    def test_prune_drops_stale_epochs(self, tmp_path, suffix):
        path = tmp_path / f"plans.{suffix}"
        cache = PlanCache(path=path)
        cache.store("old", _spec(), 1.0, "time", "epoch1")
        cache.store("new", _spec(), 2.0, "time", "epoch2")
        assert cache.prune("epoch2") == 1
        assert cache.lookup("old") is None
        assert cache.lookup("new") is not None
        assert PlanCache(path=path).disk_entries == 1


# -- SQLite disk tier -------------------------------------------------------


class TestSQLiteTier:
    """The WAL-mode backend: explicit selection, siblings, migration,
    and a seeded differential pinning it bit-identical to the JSON
    tier (same CachedPlans, same stats, same prune counts)."""

    def test_explicit_backend_overrides_suffix(self, tmp_path):
        cache = PlanCache(path=tmp_path / "plans.cache", backend="sqlite")
        assert cache.backend_name == "sqlite"
        cache.store("key", _spec(), 1.0, "time", "e")
        reader = PlanCache(path=tmp_path / "plans.cache", backend="sqlite")
        assert reader.lookup("key") is not None
        # The file really is a SQLite database in WAL mode.
        import sqlite3

        connection = sqlite3.connect(tmp_path / "plans.cache")
        assert connection.execute(
            "PRAGMA journal_mode"
        ).fetchone()[0] == "wal"
        connection.close()

    def test_sibling_instances_accumulate_without_clobbering(self, tmp_path):
        path = tmp_path / "plans.sqlite"
        # Both "processes" open the store before either writes — the
        # scenario the JSON tier only survives sequentially.
        writer_a = PlanCache(path=path)
        writer_b = PlanCache(path=path)
        writer_a.store("k1", _spec(("io",)), 1.0, "time", "e")
        writer_b.store("k2", _spec(("oi",)), 2.0, "time", "e")
        fresh = PlanCache(path=path)
        assert fresh.lookup("k1") is not None
        assert fresh.lookup("k2") is not None
        assert fresh.disk_entries == 2

    def test_migrate_json_imports_entries_database_rows_win(self, tmp_path):
        json_path = tmp_path / "plans.json"
        old = PlanCache(path=json_path)
        old.store("migrated", _spec(("io",)), 1.0, "time", "e1")
        old.store("shared", _spec(("io",)), 1.0, "time", "e1")
        sqlite_path = tmp_path / "plans.sqlite"
        newer = PlanCache(path=sqlite_path)
        newer.store("shared", _spec(("oi",)), 9.0, "time", "e2")
        migrated = PlanCache(path=sqlite_path, migrate_json=json_path)
        hit = migrated.lookup("migrated")
        assert hit is not None and hit.epoch == "e1"
        kept = migrated.lookup("shared")  # existing database row wins
        assert kept.cost == 9.0 and kept.epoch == "e2"
        assert migrated.disk_entries == 2

    def test_missing_migration_file_is_ignored(self, tmp_path):
        cache = PlanCache(
            path=tmp_path / "plans.sqlite",
            migrate_json=tmp_path / "absent.json",
        )
        assert cache.disk_entries == 0

    def test_json_and_sqlite_tiers_are_bit_identical(self, tmp_path):
        """Differential oracle: a seeded random op sequence driven
        against both backends produces identical CachedPlans, stats,
        prune counts, and entry sets."""
        import random

        for seed in (1, 7, 20080824):
            rng = random.Random(seed)
            caches = {
                "json": PlanCache(path=tmp_path / f"d{seed}.json"),
                "sqlite": PlanCache(path=tmp_path / f"d{seed}.sqlite"),
            }
            keys = [f"key{i}" for i in range(6)]
            epochs = ["e1", "e2"]
            for _ in range(120):
                op = rng.choice(("store", "lookup", "lookup", "prune"))
                key = rng.choice(keys)
                if op == "store":
                    spec = _spec((rng.choice(("io", "oi")),))
                    args = (key, spec, rng.randint(1, 9) / 2.0, "time",
                            rng.choice(epochs))
                    assert (caches["json"].store(*args)
                            == caches["sqlite"].store(*args))
                elif op == "lookup":
                    hits = {
                        name: cache.lookup(key)
                        for name, cache in caches.items()
                    }
                    assert (hits["json"] is None) == (hits["sqlite"] is None)
                    if hits["json"] is not None:
                        assert hits["json"] == hits["sqlite"]
                else:
                    epoch = rng.choice(epochs)
                    assert (caches["json"].prune(epoch)
                            == caches["sqlite"].prune(epoch))
            assert (caches["json"].stats.to_dict()
                    == caches["sqlite"].stats.to_dict())
            assert (caches["json"]._tier.keys()
                    == caches["sqlite"]._tier.keys())
            # And both survive a restart with the same visible state.
            restarted = {
                name: PlanCache(path=cache.path)
                for name, cache in caches.items()
            }
            for key in keys:
                hits = {
                    name: cache.lookup(key)
                    for name, cache in restarted.items()
                }
                assert hits["json"] == hits["sqlite"]


# -- Per-tenant store quotas ------------------------------------------------


class TestTenantQuota:
    def test_quota_bounds_distinct_keys_per_tenant(self):
        cache = PlanCache(tenant_quota=2)
        assert cache.store("a", _spec(), 1.0, "time", "e", tenant="A")
        assert cache.store("b", _spec(), 1.0, "time", "e", tenant="A")
        assert not cache.store("c", _spec(), 1.0, "time", "e", tenant="A")
        # Refreshing an admitted key is not a new admission.
        assert cache.store("a", _spec(("oi",)), 2.0, "time", "e", tenant="A")
        # Another tenant has its own budget.
        assert cache.store("c", _spec(), 1.0, "time", "e", tenant="B")
        assert cache.stats.quota_rejections == 1
        assert cache.lookup("c") is not None  # B's store was admitted

    def test_untenanted_stores_bypass_the_quota(self):
        cache = PlanCache(tenant_quota=1)
        assert cache.store("a", _spec(), 1.0, "time", "e")
        assert cache.store("b", _spec(), 1.0, "time", "e")
        assert cache.stats.quota_rejections == 0

    def test_rejected_store_costs_reoptimization_not_correctness(self):
        """A QueryService over a quota-0 shared plan cache keeps
        answering correctly — every submit just re-optimizes."""
        cache = PlanCache(tenant_quota=0)
        service = QueryService(
            registry=weekend_registry(), k_default=3, plan_cache=cache
        )
        query = mahler_weekend_query()
        first = service.submit(query)
        second = service.submit(query)
        assert first.provenance == "optimized"
        assert second.provenance == "optimized"  # nothing was cached
        assert _answer_signature(first) == _answer_signature(second)
        assert service.stats.optimizer_runs == 2
        assert cache.stats.quota_rejections == 2
        assert cache.stats.stores == 0


# -- SessionManager ---------------------------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _executor(registry=None, query=None):
    from repro.execution.progressive import ProgressiveExecutor
    from repro.optimizer.optimizer import optimize_query
    from repro.costs.time_cost import ExecutionTimeMetric

    registry = registry or weekend_registry()
    query = query or mahler_weekend_query()
    optimized = optimize_query(query, registry, ExecutionTimeMetric(), k=2)
    return ProgressiveExecutor(
        registry=registry, plan=optimized.plan, head=tuple(query.head)
    )


class TestSessionManager:
    def test_ttl_expiry_is_lazy_and_deterministic(self):
        clock = _FakeClock()
        manager = SessionManager(ttl=10.0, clock=clock)
        session = manager.create(mahler_weekend_query(), _executor())
        clock.now = 9.0
        assert manager.get(session.session_id) is session  # touch at 9.0
        clock.now = 18.0
        assert manager.get(session.session_id) is session  # still within TTL
        clock.now = 28.1
        with pytest.raises(SessionError):
            manager.get(session.session_id)
        assert session.closed
        assert manager.stats.expired == 1

    def test_capacity_evicts_least_recently_touched(self):
        clock = _FakeClock()
        manager = SessionManager(capacity=2, ttl=None, clock=clock)
        query = mahler_weekend_query()
        executor = _executor()
        first = manager.create(query, executor)
        clock.now = 1.0
        second = manager.create(query, executor)
        clock.now = 2.0
        manager.get(first.session_id)  # first is now the most recent
        clock.now = 3.0
        manager.create(query, executor)  # evicts second
        assert manager.stats.evicted == 1
        assert second.closed
        with pytest.raises(SessionError):
            manager.get(second.session_id)
        assert manager.get(first.session_id) is first

    def test_release_closes_immediately(self):
        manager = SessionManager(ttl=None)
        session = manager.create(mahler_weekend_query(), _executor())
        assert manager.release(session.session_id) is True
        assert session.closed
        assert manager.release(session.session_id) is False
        assert len(manager) == 0


# -- QueryService -----------------------------------------------------------


_TOPICS = ("merger", "earnings", "recall", "lawsuit")
_SECTORS = ("tech", "energy", "retail")


class TestQueryService:
    def test_second_submit_is_a_memory_hit_with_zero_calls(self):
        service = QueryService(registry=weekend_registry(), k_default=3)
        query = mahler_weekend_query()
        first = service.submit(query)
        second = service.submit(query)
        assert first.provenance == "optimized"
        assert second.provenance == "memory"
        assert _answer_signature(first) == _answer_signature(second)
        assert second.stats["service_calls"] == 0
        assert second.stats["annotate_calls"] == 0

    def test_ask_for_more_resumes_the_session(self):
        service = QueryService(registry=weekend_registry(), k_default=2)
        first = service.submit(mahler_weekend_query())
        more = service.ask_for_more(first.session_id, 3)
        assert more.provenance == "session"
        assert len(more.rows) >= len(first.rows)
        assert more.rows[: len(first.rows)] == first.rows
        assert service.stats.continuations == 1

    def test_released_session_cannot_resume(self):
        service = QueryService(registry=weekend_registry(), k_default=2)
        response = service.submit(mahler_weekend_query())
        assert service.release(response.session_id) is True
        with pytest.raises(SessionError):
            service.ask_for_more(response.session_id)

    def test_different_k_is_a_different_cache_key(self):
        service = QueryService(registry=weekend_registry())
        query = mahler_weekend_query()
        assert service.submit(query, k=2).provenance == "optimized"
        assert service.submit(query, k=3).provenance == "optimized"
        assert service.submit(query, k=2).provenance == "memory"

    def test_different_optimizer_configs_never_share_plans(self):
        from repro.optimizer.optimizer import OptimizerConfig

        cache = PlanCache()
        query = mahler_weekend_query()
        default = QueryService(
            registry=weekend_registry(), k_default=3, plan_cache=cache
        )
        square = QueryService(
            registry=weekend_registry(), k_default=3, plan_cache=cache,
            optimizer_config=OptimizerConfig(fetch_heuristic="square"),
        )
        assert default.submit(query).provenance == "optimized"
        # Same query, same shared cache — but a different search
        # config must not be served the other service's plan.
        assert square.submit(query).provenance == "optimized"
        assert default.submit(query).provenance == "memory"
        assert square.submit(query).provenance == "memory"
        assert square.stats.optimizer_runs == 1

    def test_multi_round_submit_reports_cumulative_work(self):
        # k far beyond the first round's yield forces progressive
        # fetch growth; the response must account every round's calls,
        # not just the final round's fresh counters.
        service = QueryService(registry=weekend_registry(), k_default=40)
        response = service.submit(mahler_weekend_query(), k=40)
        assert response.stats["rounds"] > 1
        executor = service.sessions.get(response.session_id).executor
        assert response.stats["service_calls"] == sum(
            r.new_calls for r in executor.rounds
        )
        assert response.stats["page_fetches"] == sum(
            r.stats.total_fetches for r in executor.rounds if r.stats
        )
        assert response.stats["service_calls"] > 0

    def test_service_cache_admission_control_never_changes_answers(self):
        """The ROADMAP follow-up: the shared service cache is size-
        bounded with LRU eviction.  A capacity-1 service must answer a
        repeated workload bit-identically to the unbounded one, paying
        only extra remote calls."""
        query = mahler_weekend_query()
        outcomes = {}
        for capacity in (None, 1):
            service = QueryService(
                registry=weekend_registry(),
                k_default=3,
                service_cache_capacity=capacity,
            )
            answers = [
                _answer_signature(service.submit(query)) for _ in range(3)
            ]
            snapshot = service.snapshot()["service_cache"]
            outcomes[capacity] = (answers, snapshot)
        unbounded_answers, unbounded_snapshot = outcomes[None]
        bounded_answers, bounded_snapshot = outcomes[1]
        assert bounded_answers == unbounded_answers
        assert bounded_snapshot["capacity"] == 1
        assert bounded_snapshot["entries"] <= 1
        assert bounded_snapshot["evictions"] > 0  # the bound bit
        assert unbounded_snapshot["evictions"] == 0
        assert unbounded_snapshot["entries"] > 1

    def test_tiny_cache_capacity_costs_calls_not_correctness(self):
        """Same workload, warm resubmission: the unbounded cache
        absorbs it fully, the capacity-1 cache pays remote calls —
        and both return identical rows."""
        query = mahler_weekend_query()
        calls = {}
        for capacity in (None, 1):
            service = QueryService(
                registry=weekend_registry(),
                k_default=3,
                service_cache_capacity=capacity,
            )
            service.submit(query)
            warm = service.submit(query)  # plan-cache + service-cache warm
            calls[capacity] = warm.stats["service_calls"]
        assert calls[None] == 0  # fully absorbed, as before this PR
        assert calls[1] >= calls[None]

    def test_epoch_bump_forces_reoptimization(self):
        registry = weekend_registry()
        service = QueryService(registry=registry, k_default=2)
        query = mahler_weekend_query()
        assert service.submit(query).provenance == "optimized"
        assert service.submit(query).provenance == "memory"
        # Profile drift: a re-estimated join selectivity bumps the
        # registry's content epoch, stranding the cached plan.
        registry.register_join_selectivity("lowcost", "concerts", 0.5)
        bumped = service.submit(query)
        assert bumped.provenance == "optimized"
        assert service.stats.optimizer_runs == 2

    def test_resumed_response_reports_the_submit_time_epoch(self):
        """Regression: ``ask_for_more`` stamped resumed responses with
        the registry's *current* content epoch — but the continuation
        keeps executing the plan resolved at submit time, so a
        mid-session registry update must not relabel its answers as
        computed under the new epoch."""
        registry = weekend_registry()
        service = QueryService(registry=registry, k_default=2)
        first = service.submit(mahler_weekend_query())
        assert first.epoch == registry.content_epoch()
        # Mid-session profile drift bumps the epoch...
        registry.register_join_selectivity("lowcost", "concerts", 0.5)
        assert registry.content_epoch() != first.epoch
        # ...but the continuation still reports the pinned one.
        more = service.ask_for_more(first.session_id, 2)
        assert more.provenance == "session"
        assert more.epoch == first.epoch

    def test_disk_tier_spans_service_instances(self, tmp_path):
        path = tmp_path / "plans.json"
        query = mahler_weekend_query()
        warmup = QueryService(
            registry=weekend_registry(), k_default=2,
            plan_cache=PlanCache(path=path),
        )
        cold_answer = warmup.submit(query)
        restarted = QueryService(
            registry=weekend_registry(), k_default=2,
            plan_cache=PlanCache(path=path),
        )
        warm_answer = restarted.submit(query)
        assert warm_answer.provenance == "disk"
        assert _answer_signature(warm_answer) == _answer_signature(cold_answer)

    def test_parses_datalog_text(self):
        service = QueryService(registry=weekend_registry(), k_default=2)
        response = service.submit(
            "q(City, Price) :- lowcost('Milano', City, Date, Price), "
            "Price <= 60."
        )
        assert response.columns == ("City", "Price")
        assert response.rows

    def test_response_is_json_serializable(self):
        import json

        service = QueryService(registry=weekend_registry(), k_default=2)
        response = service.submit(mahler_weekend_query())
        decoded = json.loads(response.to_json())
        assert decoded["provenance"] == "optimized"
        assert decoded["rows"] == [list(row) for row in response.rows]
        json.loads(
            json.dumps(service.snapshot())
        )  # the snapshot round-trips too


class TestSnapshotAndPrefetchRegressions:
    """The serving-layer bug batch: snapshot must survive cache
    wrapping, and prefetch must not execute without a shared cache."""

    def test_snapshot_reports_the_wrapped_service_cache(self):
        # The shared cache is ThreadSafeCache-wrapped since the
        # thread-safety change; the snapshot used to gate on
        # `isinstance(_service_cache, OptimalCache)` and silently
        # dropped the section for any wrapper.
        from repro.execution.cache import ThreadSafeCache

        service = QueryService(
            registry=weekend_registry(), k_default=3,
            service_cache_capacity=8,
        )
        assert isinstance(service._service_cache, ThreadSafeCache)
        service.submit(mahler_weekend_query())
        section = service.snapshot()["service_cache"]
        assert section["type"] == "OptimalCache"
        assert section["entries"] > 0
        assert section["capacity"] == 8
        assert section["evictions"] >= 0

    def test_snapshot_reports_non_optimal_caches_too(self):
        from repro.execution.cache import CacheSetting

        service = QueryService(
            registry=weekend_registry(), k_default=3,
            cache_setting=CacheSetting.ONE_CALL,
        )
        service.submit(mahler_weekend_query())
        section = service.snapshot()["service_cache"]
        assert section["type"] == "OneCallCache"
        assert "entries" not in section  # no size surface to report

    def test_snapshot_has_no_section_without_a_shared_cache(self):
        service = QueryService(
            registry=weekend_registry(), k_default=3,
            share_service_cache=False,
        )
        service.submit(mahler_weekend_query())
        assert "service_cache" not in service.snapshot()

    def test_prefetch_without_shared_cache_skips_execution(self):
        service = QueryService(
            registry=weekend_registry(), k_default=3,
            share_service_cache=False,
        )
        summary = service.prefetch(mahler_weekend_query())
        assert summary["skipped"] is True
        assert summary["shared"] is False
        assert summary["service_calls"] == 0
        assert summary["answers_available"] == 0
        assert summary["workers"] == 0
        assert service.stats.prefetches == 1
        # The plan cache was still warmed by the plan resolution.
        assert summary["provenance"] == "optimized"
        assert service.submit(mahler_weekend_query()).provenance == "memory"

    def test_prefetch_with_shared_cache_still_executes_and_warms(self):
        service = QueryService(registry=weekend_registry(), k_default=3)
        summary = service.prefetch(mahler_weekend_query())
        assert summary["skipped"] is False
        assert summary["shared"] is True
        assert summary["service_calls"] > 0
        # A later submit rides the warmed shared cache: zero calls.
        response = service.submit(mahler_weekend_query())
        assert response.provenance == "memory"
        assert response.stats["service_calls"] == 0


class TestServingDifferential:
    """Hypothesis: warm cache hits are bit-identical to cold runs."""

    @given(
        topic=st.sampled_from(_TOPICS),
        sector=st.sampled_from(_SECTORS),
        min_move=st.integers(3, 7),
        k=st.integers(1, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_plan_cache_hit_matches_cold_optimize_execute(
        self, topic, sector, min_move, k
    ):
        query = market_moving_news_query(topic, sector, min_move)
        # Cold oracle: fresh registry, empty caches, optimizer runs.
        cold = QueryService(registry=news_registry(), k_default=k)
        cold_answer = cold.submit(query, k=k)
        assert cold_answer.provenance == "optimized"
        # Warm path: second submission on a service that has already
        # optimized this template and fetched overlapping pages.
        warm = QueryService(registry=news_registry(), k_default=k)
        warm.submit(query, k=k)
        warm_answer = warm.submit(query, k=k)
        assert warm_answer.provenance == "memory"
        assert warm_answer.stats["annotate_calls"] == 0
        assert _answer_signature(warm_answer) == _answer_signature(cold_answer)

    @given(
        topic=st.sampled_from(_TOPICS),
        k=st.integers(1, 5),
        streamed=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_shared_service_cache_never_changes_answers(
        self, topic, k, streamed
    ):
        mode = (
            ExecutionMode.STREAMED if streamed else ExecutionMode.PARALLEL
        )
        shared = QueryService(
            registry=news_registry(), k_default=k, mode=mode
        )
        # Warm the shared cache with *different* templates first.
        for other_sector in _SECTORS:
            shared.submit(market_moving_news_query(topic, other_sector), k=k)
        query = market_moving_news_query(topic, "tech")
        warm_answer = shared.submit(query, k=k)
        isolated = QueryService(
            registry=news_registry(), k_default=k, mode=mode,
            share_service_cache=False,
        )
        isolated_answer = isolated.submit(query, k=k)
        assert _answer_signature(warm_answer) == _answer_signature(
            isolated_answer
        )

    @given(
        erspi=st.floats(0.5, 20.0, allow_nan=False),
        tau=st.floats(0.1, 5.0, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_profile_perturbation_changes_epoch_and_key(self, erspi, tau):
        from repro.model.schema import signature
        from repro.services.profile import exact_profile
        from repro.services.registry import ServiceRegistry
        from repro.services.table import TableExactService

        def build(profile):
            registry = ServiceRegistry()
            registry.register(
                TableExactService(
                    signature("s", ["A", "B"], ["io"]), profile, [("a", "b")]
                )
            )
            return registry

        base = build(exact_profile(erspi=1.0, response_time=1.0))
        perturbed = build(exact_profile(erspi=erspi, response_time=tau))
        unchanged = erspi == 1.0 and tau == 1.0
        assert (
            base.content_epoch() == perturbed.content_epoch()
        ) == unchanged
        query = market_moving_news_query()
        fingerprint = query_fingerprint(query)
        base_key = plan_cache_key(
            fingerprint, base.content_epoch(), "time", 5, "optimal", "cfg"
        )
        perturbed_key = plan_cache_key(
            fingerprint, perturbed.content_epoch(), "time", 5, "optimal", "cfg"
        )
        assert (base_key == perturbed_key) == unchanged
