"""Unit tests for the datalog-like query parser."""

import pytest

from repro.model.parser import ParseError, parse_query
from repro.model.predicates import BinaryExpression
from repro.model.terms import Constant, Variable


class TestBasicParsing:
    def test_single_atom(self):
        q = parse_query("q(X) :- s(X).")
        assert q.name == "q"
        assert q.head == (Variable("X"),)
        assert len(q.atoms) == 1
        assert q.atoms[0].service == "s"

    def test_trailing_dot_optional(self):
        q = parse_query("q(X) :- s(X)")
        assert len(q.atoms) == 1

    def test_left_arrow_alternative(self):
        q = parse_query("q(X) <- s(X).")
        assert len(q.atoms) == 1

    def test_constants_quoted_and_numeric(self):
        q = parse_query("q(X) :- s('Milano', X, 28, 3.5).")
        terms = q.atoms[0].terms
        assert terms[0] == Constant("Milano")
        assert terms[2] == Constant(28)
        assert terms[3] == Constant(3.5)

    def test_lowercase_identifier_is_constant(self):
        q = parse_query("q(X) :- s(db, X).")
        assert q.atoms[0].terms[0] == Constant("db")

    def test_double_quoted_strings(self):
        q = parse_query('q(X) :- s("New York", X).')
        assert q.atoms[0].terms[0] == Constant("New York")


class TestPredicates:
    def test_simple_comparison(self):
        q = parse_query("q(X) :- s(X, T), T >= 28.")
        assert len(q.predicates) == 1
        assert q.predicates[0].op == ">="

    def test_equals_normalized(self):
        q = parse_query("q(X) :- s(X), X = 3.")
        assert q.predicates[0].op == "=="

    def test_arithmetic_expression(self):
        q = parse_query("q(F, H) :- s(F, H), F + H < 2000.")
        predicate = q.predicates[0]
        assert isinstance(predicate.left, BinaryExpression)
        assert predicate.holds({Variable("F"): 100, Variable("H"): 100})

    def test_parenthesized_expression(self):
        q = parse_query("q(A) :- s(A), (A + 1) * 2 <= 10.")
        assert q.predicates[0].holds({Variable("A"): 4})
        assert not q.predicates[0].holds({Variable("A"): 5})


class TestRunningExampleText:
    QUERY = """
    q(Conf, City, HPrice, FPrice, Start, End, Hotel) :-
        flight('Milano', City, Start, End, StartTime, EndTime, FPrice),
        hotel(Hotel, City, 'luxury', Start, End, HPrice),
        conf('DB', Conf, Start, End, City),
        weather(City, Temperature, Start),
        Start >= '2007-03-14', Temperature >= 28,
        FPrice + HPrice < 2000.
    """

    def test_full_query(self):
        q = parse_query(self.QUERY)
        assert q.services == ("flight", "hotel", "conf", "weather")
        assert len(q.predicates) == 3
        assert q.arity == 7
        assert q.is_multi_domain


class TestErrors:
    def test_missing_implies(self):
        with pytest.raises(ParseError):
            parse_query("q(X) s(X).")

    def test_variable_head_enforced(self):
        with pytest.raises(ParseError):
            parse_query("q('a') :- s(X).")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_query("q(X) :- s(X) @ t(X).")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query("q(X) :- s(X). extra")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_query("q(X) :- s(X.")

    def test_empty_input(self):
        with pytest.raises(ParseError):
            parse_query("")


class TestRoundTrip:
    def test_parsed_query_matches_programmatic(self):
        from repro.model.atoms import atom
        from repro.model.query import query

        parsed = parse_query("q(City) :- cities('it', City).")
        built = query("q", [Variable("City")], [atom("cities", "it", "City")])
        assert parsed.atoms == built.atoms
        assert parsed.head == built.head
