"""Unit tests for conjunctive queries (safety, joins, multi-domain)."""

import pytest

from repro.model.atoms import atom
from repro.model.predicates import comparison
from repro.model.query import ConjunctiveQuery, QueryError, query
from repro.model.schema import schema_of, signature
from repro.model.terms import Variable


@pytest.fixture()
def two_atom_query():
    return query(
        "q",
        [Variable("City"), Variable("Spot")],
        [atom("cities", "it", "City"), atom("spots", "City", "Spot", "Score")],
        [comparison("Score", ">=", 7)],
    )


class TestSafety:
    def test_head_variable_must_occur_in_body(self):
        with pytest.raises(QueryError):
            query("q", [Variable("Nope")], [atom("s", "X")])

    def test_predicate_variables_must_occur_in_body(self):
        with pytest.raises(QueryError):
            query("q", [Variable("X")], [atom("s", "X")], [comparison("Y", ">", 1)])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryError):
            query("q", [], [])

    def test_empty_head_allowed(self):
        boolean_query = query("q", [], [atom("s", "X")])
        assert boolean_query.arity == 0


class TestAccessors:
    def test_arity(self, two_atom_query):
        assert two_atom_query.arity == 2

    def test_body_variables(self, two_atom_query):
        assert two_atom_query.body_variables == {
            Variable("City"), Variable("Spot"), Variable("Score")
        }

    def test_services_with_repeats(self):
        repeated = query(
            "q", [Variable("X")], [atom("s", "X"), atom("s", "X")]
        )
        assert repeated.services == ("s", "s")

    def test_is_multi_domain(self, two_atom_query):
        assert two_atom_query.is_multi_domain
        single = query("q", [Variable("X")], [atom("s", "X")])
        assert not single.is_multi_domain

    def test_join_variables(self, two_atom_query):
        assert two_atom_query.join_variables() == {Variable("City")}

    def test_atoms_with_variable(self, two_atom_query):
        assert two_atom_query.atoms_with_variable(Variable("City")) == (0, 1)
        assert two_atom_query.atoms_with_variable(Variable("Score")) == (1,)

    def test_predicates_on(self, two_atom_query):
        ready = two_atom_query.predicates_on(frozenset({Variable("Score")}))
        assert len(ready) == 1
        assert two_atom_query.predicates_on(frozenset()) == ()

    def test_str_rendering(self, two_atom_query):
        text = str(two_atom_query)
        assert text.startswith("q(City, Spot) :- ")
        assert "cities('it', City)" in text
        assert "Score >= 7" in text


class TestSchemaValidation:
    def test_validate_against_schema(self, two_atom_query):
        schema = schema_of(
            [
                signature("cities", ["Country", "City"], ["io"]),
                signature("spots", ["City", "Spot", "Score"], ["ioo"]),
            ]
        )
        two_atom_query.validate_against(schema)  # should not raise

    def test_validate_detects_arity_mismatch(self, two_atom_query):
        schema = schema_of(
            [
                signature("cities", ["Country"], ["i"]),
                signature("spots", ["City", "Spot", "Score"], ["ioo"]),
            ]
        )
        with pytest.raises(Exception):
            two_atom_query.validate_against(schema)


class TestRunningExample:
    def test_running_example_shape(self):
        from repro.sources.travel import running_example_query

        q = running_example_query()
        assert q.is_multi_domain
        assert len(q.atoms) == 4
        assert q.services == ("flight", "hotel", "conf", "weather")
        assert len(q.predicates) == 4
        assert Variable("City") in q.join_variables()
        assert Variable("Start") in q.join_variables()
