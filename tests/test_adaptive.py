"""Tests for the mid-flight adaptivity layer.

Covers the three adaptive mechanisms end to end:

* the :class:`~repro.execution.resilience.DriftMonitor` /
  :class:`~repro.execution.adaptive.AdaptiveExecutor` splice loop
  (drift fires, the aborted work stays accounted, the replacement
  inner run answers fetched pages from the shared cache);
* sibling fallback in the static engine (an exhausted unit is served
  by a registered equivalent before partial results may drop it);
* the serving layer's per-service :class:`~repro.serving.breaker.
  CircuitBreaker` (cross-request health feeding adjusted plan costs
  and proactive rerouting).

The anchor of the whole layer is the **zero-drift differential**: with
adaptivity armed but nothing drifting, the adaptive run must be
bit-identical — rows, ranks, and full per-round statistics — to the
static executor over the same plan.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.engine import ExecutionMode
from repro.execution.progressive import ProgressiveExecutor
from repro.execution.resilience import (
    DriftMonitor,
    DriftPolicy,
    PlanDrift,
    ResilienceConfig,
)
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.serving.breaker import (
    AdaptivePolicy,
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
)
from repro.serving.service import QueryService
from repro.services.profile import search_profile
from repro.services.registry import (
    AdjustedRegistry,
    JoinMethod,
    ServiceRegistry,
)
from repro.services.table import TableSearchService
from repro.testing.faults import FaultSchedule, FlakyService


# -- the test world ---------------------------------------------------------


def _table(name, var, side, chunk):
    return TableSearchService(
        signature(name, ["Q", "K", var], ["ioo"]),
        search_profile(chunk_size=chunk, response_time=1.0),
        [("q", 0, i) for i in range(side)],
        score=lambda row: float(-row[2]),
    )


def build_world(side=6, chunk=2, fetches=2, sibling=False):
    """A two-feed merge-scan world; optionally a ``lefts`` sibling.

    ``lefts_backup`` shares lefts' signature domains, profile kind,
    data, and scores — the ideal fallback — but is a distinct
    registered service, so every reroute onto it is observable.
    """
    registry = ServiceRegistry()
    registry.register(_table("lefts", "L", side, chunk))
    registry.register(_table("rights", "R", side, chunk))
    if sibling:
        registry.register(_table("lefts_backup", "L", side, chunk))
    registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
    key, lv, rv = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="adaptive",
        head=(key, lv, rv),
        atoms=(
            Atom("lefts", (Constant("q"), key, lv)),
            Atom("rights", (Constant("q"), key, rv)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: fetches, 1: fetches},
    )
    return registry, query, plan


def make_flaky(registry, name, **schedule_kwargs):
    """Wrap one registered service with seeded injected faults."""
    schedule = FaultSchedule(seed=7, **schedule_kwargs)
    registry._services[name] = FlakyService(
        registry._services[name], schedule
    )


def row_view(result):
    """The observable answer: bindings + rank keys, in order."""
    return [(dict(r.bindings), r.rank_key()) for r in result.rows]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# -- drift monitor ----------------------------------------------------------


class TestDriftMonitor:
    def _profile(self, response_time=1.0):
        return search_profile(chunk_size=2, response_time=response_time)

    def test_under_threshold_only_records(self):
        monitor = DriftMonitor(DriftPolicy(latency_factor=3.0, min_fetches=2))
        profile = self._profile()
        for _ in range(10):
            monitor.observe("svc", profile, 2.9)
        assert monitor.observed_response_times() == {"svc": pytest.approx(2.9)}

    def test_raises_once_mean_crosses_threshold(self):
        monitor = DriftMonitor(DriftPolicy(latency_factor=3.0, min_fetches=3))
        profile = self._profile()
        monitor.observe("svc", profile, 25.0)
        monitor.observe("svc", profile, 25.0)  # below min_fetches: silent
        with pytest.raises(PlanDrift) as excinfo:
            monitor.observe("svc", profile, 25.0)
        drift = excinfo.value
        assert drift.service == "svc"
        assert drift.observed == pytest.approx(25.0)
        assert drift.expected == pytest.approx(1.0)
        assert drift.fetches == 3

    def test_adapted_services_are_exempt(self):
        monitor = DriftMonitor(
            DriftPolicy(latency_factor=3.0, min_fetches=1),
            adapted=frozenset({"svc"}),
        )
        monitor.observe("svc", self._profile(), 1000.0)
        assert monitor.observed_response_times() == {}

    def test_missing_or_zero_profile_is_ignored(self):
        monitor = DriftMonitor(DriftPolicy(latency_factor=3.0, min_fetches=1))
        monitor.observe("svc", None, 1000.0)
        zero = dataclasses.replace(self._profile(), response_time=0.0)
        monitor.observe("svc", zero, 1000.0)
        assert monitor.observed_response_times() == {}


# -- circuit breaker --------------------------------------------------------


class TestCircuitBreaker:
    POLICY = BreakerPolicy(
        failure_threshold=2, latency_factor=3.0, min_fetches=2, cooldown=10.0
    )

    def _breaker(self):
        clock = FakeClock()
        return CircuitBreaker(self.POLICY, clock=clock), clock

    def test_starts_closed_and_ignores_no_signal(self):
        breaker, _ = self._breaker()
        assert breaker.state("svc") is BreakerState.CLOSED
        breaker.record("svc")  # a plan that never touched the service
        assert breaker.state("svc") is BreakerState.CLOSED
        assert breaker.snapshot() == {}

    def test_consecutive_dropped_requests_open(self):
        breaker, _ = self._breaker()
        breaker.record("svc", dropped=True)
        assert breaker.state("svc") is BreakerState.CLOSED
        breaker.record("svc", dropped=True)
        assert breaker.state("svc") is BreakerState.OPEN
        assert breaker.open_services() == ("svc",)

    def test_healthy_request_resets_the_failure_count(self):
        breaker, _ = self._breaker()
        breaker.record("svc", dropped=True)
        breaker.record("svc", fetches=4, mean_latency=1.0, expected=1.0)
        breaker.record("svc", dropped=True)
        assert breaker.state("svc") is BreakerState.CLOSED

    def test_sustained_slow_latency_opens_with_override(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record("svc", fetches=3, mean_latency=25.0, expected=1.0)
        assert breaker.state("svc") is BreakerState.OPEN
        assert breaker.response_time_overrides() == {
            "svc": pytest.approx(25.0)
        }

    def test_too_few_fetches_make_latency_meaningless(self):
        breaker, _ = self._breaker()
        for _ in range(5):
            breaker.record("svc", fetches=1, mean_latency=1000.0, expected=1.0)
        # One slow page is a straggler, not a drift: the request even
        # counts as healthy traffic.
        assert breaker.state("svc") is BreakerState.CLOSED
        assert breaker.response_time_overrides() == {}

    def test_cooldown_grants_a_half_open_probe(self):
        breaker, clock = self._breaker()
        breaker.record("svc", dropped=True)
        breaker.record("svc", dropped=True)
        clock.advance(9.9)
        assert breaker.state("svc") is BreakerState.OPEN
        clock.advance(0.1)
        assert breaker.state("svc") is BreakerState.HALF_OPEN
        # Half-open lifts the cost override so the probe runs at face
        # value, and the service no longer pre-routes to siblings.
        assert breaker.response_time_overrides() == {}
        assert breaker.open_services() == ()

    def test_healthy_probe_closes_fully(self):
        breaker, clock = self._breaker()
        for _ in range(2):
            breaker.record("svc", fetches=3, mean_latency=25.0, expected=1.0)
        clock.advance(10.0)
        assert breaker.state("svc") is BreakerState.HALF_OPEN
        breaker.record("svc", fetches=3, mean_latency=1.0, expected=1.0)
        assert breaker.state("svc") is BreakerState.CLOSED
        assert breaker.snapshot() == {}

    def test_failed_probe_reopens_and_restarts_the_cooldown(self):
        breaker, clock = self._breaker()
        breaker.record("svc", dropped=True)
        breaker.record("svc", dropped=True)
        clock.advance(10.0)
        assert breaker.state("svc") is BreakerState.HALF_OPEN
        breaker.record("svc", dropped=True)
        assert breaker.state("svc") is BreakerState.OPEN
        clock.advance(9.9)
        assert breaker.state("svc") is BreakerState.OPEN
        clock.advance(0.1)
        assert breaker.state("svc") is BreakerState.HALF_OPEN

    def test_snapshot_reports_every_non_closed_breaker(self):
        breaker, _ = self._breaker()
        breaker.record("a", dropped=True)
        for _ in range(2):
            breaker.record("b", fetches=3, mean_latency=25.0, expected=1.0)
        snapshot = breaker.snapshot()
        assert snapshot["a"]["state"] == "closed"
        assert snapshot["a"]["consecutive_failures"] == 1
        assert snapshot["b"]["state"] == "open"
        assert snapshot["b"]["observed_response_time"] == pytest.approx(25.0)


# -- siblings and the adjusted registry view --------------------------------


class TestSiblingsAndAdjustedView:
    def test_siblings_require_identical_shape(self):
        registry, _, _ = build_world(sibling=True)
        assert registry.siblings("lefts", ("ioo",)) == ("lefts_backup",)
        assert registry.siblings("lefts_backup") == ("lefts",)
        # rights has different signature domains: no siblings at all.
        assert registry.siblings("rights") == ()

    def test_adjusted_view_raises_but_never_lowers(self):
        registry, _, _ = build_world()
        view = AdjustedRegistry(registry, {"lefts": 25.0, "rights": 0.5})
        assert view.profile("lefts").response_time == pytest.approx(25.0)
        # A faster-than-profiled service needs no re-plan.
        assert view.profile("rights").response_time == pytest.approx(1.0)

    def test_adjusted_epoch_keys_separately_and_transparently(self):
        registry, _, _ = build_world()
        base = registry.content_epoch()
        assert AdjustedRegistry(registry, {}).content_epoch() == base
        adjusted = AdjustedRegistry(registry, {"lefts": 25.0})
        assert adjusted.content_epoch() != base
        # Same overrides, same epoch: the key is content-determined.
        again = AdjustedRegistry(registry, {"lefts": 25.0})
        assert again.content_epoch() == adjusted.content_epoch()


# -- the zero-drift differential -------------------------------------------


MODES = (
    ExecutionMode.SEQUENTIAL,
    ExecutionMode.PARALLEL,
    ExecutionMode.STREAMED,
)


class TestZeroDriftDifferential:
    """Adaptivity armed but idle must be structurally invisible."""

    @staticmethod
    def _pair(side, chunk, fetches, mode):
        """A static and an adaptive executor over identical worlds."""
        executors = []
        for kind in ("static", "adaptive"):
            registry, query, plan = build_world(
                side=side, chunk=chunk, fetches=fetches, sibling=True
            )
            common = dict(
                registry=registry,
                plan=plan,
                head=tuple(query.head),
                mode=mode,
            )
            if kind == "static":
                executors.append(ProgressiveExecutor(**common))
            else:
                executors.append(AdaptiveExecutor(**common))
        return executors

    @settings(max_examples=25, deadline=None)
    @given(
        side=st.integers(min_value=1, max_value=8),
        chunk=st.integers(min_value=1, max_value=4),
        fetches=st.integers(min_value=1, max_value=3),
        mode=st.sampled_from(MODES),
        k=st.integers(min_value=1, max_value=10),
        extra=st.integers(min_value=0, max_value=6),
    )
    def test_adaptive_is_bit_identical_to_static(
        self, side, chunk, fetches, mode, k, extra
    ):
        static, adaptive = self._pair(side, chunk, fetches, mode)
        results = [static.run(k), adaptive.run(k)]
        if extra:
            results = [static.more(extra), adaptive.more(extra)]
        assert row_view(results[1]) == row_view(results[0])
        assert adaptive.replans == 0
        assert adaptive.drift_events == []
        # Full accounting, not just answers: every round's fetch
        # vector, call counts, virtual elapsed, and per-service stats
        # must match field for field.
        assert len(adaptive.rounds) == len(static.rounds)
        for ours, theirs in zip(adaptive.rounds, static.rounds):
            assert ours.fetches == theirs.fetches
            assert ours.answers == theirs.answers
            assert ours.new_calls == theirs.new_calls
            assert ours.elapsed == pytest.approx(theirs.elapsed)
            assert ours.resumed == theirs.resumed
            assert ours.stats == theirs.stats

    def test_monitoring_really_is_armed(self):
        """The differential must not pass because the monitor is off."""
        _, adaptive = self._pair(side=6, chunk=2, fetches=2,
                                 mode=ExecutionMode.PARALLEL)
        assert adaptive.engine._drift_monitor is not None
        adaptive.run(4)
        observed = adaptive.engine._drift_monitor.observed_response_times()
        assert observed  # fetches were watched...
        assert adaptive.replans == 0  # ...and none of them drifted


# -- sibling fallback in the static engine ---------------------------------


RESILIENT = ResilienceConfig(partial_results=True, sibling_fallback=True)


class TestSiblingFallback:
    @pytest.mark.parametrize(
        "mode", (ExecutionMode.PARALLEL, ExecutionMode.STREAMED),
        ids=lambda m: m.value,
    )
    def test_failed_unit_is_served_by_the_sibling(self, mode):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", fail_rate=1.0)
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(query.head),
            mode=mode, resilience=RESILIENT,
        )
        result = executor.run(4)

        oracle_registry, oracle_query, oracle_plan = build_world(sibling=True)
        oracle = ProgressiveExecutor(
            registry=oracle_registry, plan=oracle_plan,
            head=tuple(oracle_query.head), mode=mode,
        ).run(4)
        assert row_view(result) == row_view(oracle)

        certificate = result.certificate
        assert certificate is not None
        assert certificate.dropped == ()
        assert certificate.substituted, "reroute must be on the certificate"
        assert all(
            unit.service == "lefts" and unit.replacement == "lefts_backup"
            for unit in certificate.substituted
        )
        assert result.stats.substituted_blocks == len(certificate.substituted)

    def test_without_the_flag_the_unit_drops(self):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", fail_rate=1.0)
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(query.head),
            mode=ExecutionMode.PARALLEL, max_rounds=2,
            resilience=ResilienceConfig(partial_results=True),
        )
        result = executor.run(4)
        certificate = result.certificate
        assert certificate.substituted == ()
        assert "lefts" in certificate.dropped_services

    def test_exhausted_siblings_demote_the_original_unit(self):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", fail_rate=1.0)
        make_flaky(registry, "lefts_backup", fail_rate=1.0)
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(query.head),
            mode=ExecutionMode.PARALLEL, max_rounds=2, resilience=RESILIENT,
        )
        result = executor.run(4)
        certificate = result.certificate
        # A unit is never reported both substituted and dropped: once
        # every sibling is exhausted the *original* identity drops.
        assert certificate.substituted == ()
        assert certificate.dropped_services == ("lefts",)
        assert result.rows == []


# -- drift-triggered splices ------------------------------------------------


def _adaptive(registry, query, plan, drift, replan=None):
    return AdaptiveExecutor(
        registry=registry, plan=plan, head=tuple(query.head),
        mode=ExecutionMode.PARALLEL, drift=drift, replan=replan,
    )


class TestDriftSplice:
    DRIFT = DriftPolicy(latency_factor=3.0, min_fetches=1)

    def test_drift_splices_onto_the_sibling(self):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", delay_rate=1.0)
        executor = _adaptive(registry, query, plan, self.DRIFT)
        result = executor.run(4)

        assert executor.replans == 1
        (event,) = executor.drift_events
        assert event.service == "lefts"
        assert event.observed == pytest.approx(25.0)
        assert event.expected == pytest.approx(1.0)
        assert event.substituted_with == "lefts_backup"
        assert not event.replanned  # no replan callback was given

        oracle_registry, oracle_query, oracle_plan = build_world(sibling=True)
        oracle = ProgressiveExecutor(
            registry=oracle_registry, plan=oracle_plan,
            head=tuple(oracle_query.head), mode=ExecutionMode.PARALLEL,
        ).run(4)
        assert row_view(result) == row_view(oracle)
        # The aborted attempt is an explicit zero-answer round whose
        # fetches stay accounted.
        aborted = executor.rounds[0]
        assert aborted.answers == 0
        assert aborted.stats.total_fetches > 0

    def test_splice_never_repulls_a_fetched_page(self):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", delay_rate=1.0)
        executor = _adaptive(registry, query, plan, self.DRIFT)
        executor.run(4)
        assert executor.replans == 1

        clean_registry, clean_query, clean_plan = build_world(sibling=True)
        clean = ProgressiveExecutor(
            registry=clean_registry, plan=clean_plan,
            head=tuple(clean_query.head), mode=ExecutionMode.PARALLEL,
        )
        clean.run(4)
        spliced_rights = sum(
            r.stats.service("rights").fetches
            for r in executor.rounds if r.stats is not None
        )
        clean_rights = sum(
            r.stats.service("rights").fetches
            for r in clean.rounds if r.stats is not None
        )
        # The shared logical cache re-serves every page the aborted
        # attempt pulled: the untouched feed's remote traffic never
        # exceeds a drift-free run's.
        assert spliced_rights <= clean_rights

    def test_drift_without_sibling_recosts_and_settles(self):
        registry, query, plan = build_world(sibling=False)
        make_flaky(registry, "lefts", delay_rate=1.0)
        seen = []

        def replan(overrides):
            seen.append(dict(overrides))
            return None  # keep the plan: only re-cost knowledge changes

        policy = DriftPolicy(
            latency_factor=3.0, min_fetches=1, substitute_siblings=False
        )
        executor = _adaptive(registry, query, plan, policy, replan=replan)
        result = executor.run(4)
        assert seen == [{"lefts": pytest.approx(25.0)}]
        (event,) = executor.drift_events
        assert event.substituted_with is None
        assert not event.replanned
        # The spliced monitor exempts the adapted service: the same
        # slow lefts never re-trips, even across a continuation.
        executor.more(2)
        assert executor.replans == 1
        assert len(result.rows) >= 4

    def test_max_replans_zero_disables_monitoring(self):
        registry, query, plan = build_world(sibling=True)
        make_flaky(registry, "lefts", delay_rate=1.0)
        policy = DriftPolicy(latency_factor=3.0, min_fetches=1, max_replans=0)
        executor = _adaptive(registry, query, plan, policy)
        result = executor.run(4)
        assert executor.replans == 0
        assert executor.engine._drift_monitor is None
        assert len(result.rows) >= 4


# -- the serving layer's breaker -------------------------------------------


def _serve(registry, policy, clock):
    return QueryService(
        registry=registry,
        metric=ExecutionTimeMetric(),
        k_default=4,
        adaptive=policy,
        breaker=CircuitBreaker(policy.breaker, clock=clock),
    )


class TestServingBreaker:
    def test_substitution_failures_open_the_breaker(self):
        registry, query, _ = build_world(sibling=True)
        make_flaky(registry, "lefts", fail_rate=1.0)
        clock = FakeClock()
        policy = AdaptivePolicy(
            breaker=BreakerPolicy(failure_threshold=1, cooldown=10.0)
        )
        service = _serve(registry, policy, clock)

        first = service.submit(query, k=4)
        assert first.partial is not None
        assert first.partial["substituted"], (
            "sibling fallback must be visible on the response"
        )
        # A substitution is a failure of the original service, even
        # though the answer survived: the breaker learns it.
        assert service.breaker.state("lefts") is BreakerState.OPEN
        assert service.snapshot()["breaker"]["lefts"]["state"] == "open"

        second = service.submit(query, k=4)
        assert second.rows == first.rows
        assert second.stats["substituted_blocks"] >= 1

    def test_latency_breaker_adjusts_costs_then_recovers(self):
        registry, query, _ = build_world(sibling=False)
        clean_lefts = registry._services["lefts"]
        make_flaky(registry, "lefts", delay_rate=1.0)
        clock = FakeClock()
        policy = AdaptivePolicy(
            drift=DriftPolicy(
                latency_factor=3.0, min_fetches=1, substitute_siblings=False
            ),
            breaker=BreakerPolicy(
                failure_threshold=1, latency_factor=3.0,
                min_fetches=1, cooldown=10.0,
            ),
        )
        service = _serve(registry, policy, clock)

        first = service.submit(query, k=4)
        # The request itself already re-planned mid-run...
        assert first.stats["replans"] >= 1
        # ...and its observed latency opened the breaker afterwards.
        assert service.breaker.state("lefts") is BreakerState.OPEN
        assert service.breaker.response_time_overrides() == {
            "lefts": pytest.approx(25.0)
        }

        # While open, planning runs under the adjusted registry view:
        # the response's epoch proves which profile costed the plan.
        second = service.submit(query, k=4)
        assert second.epoch != first.epoch
        assert second.rows == first.rows

        # Past the cooldown the breaker half-opens: overrides lift so
        # the probe runs the service at face value, and a healed
        # service closes the breaker for good.
        clock.advance(10.0)
        assert service.breaker.state("lefts") is BreakerState.HALF_OPEN
        registry._services["lefts"] = clean_lefts
        third = service.submit(query, k=4)
        assert third.epoch == first.epoch
        assert third.rows == first.rows
        assert service.breaker.state("lefts") is BreakerState.CLOSED
        assert service.snapshot()["breaker"] == {}
