"""Unit tests for the service registry (join methods, selectivities)."""

import pytest

from repro.model.schema import SchemaError, signature
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import JoinMethod, RegistryError, ServiceRegistry
from repro.services.table import TableExactService, TableSearchService


def _exact(name, erspi=1.0, tau=1.0):
    return TableExactService(
        signature(name, ["A", "B"], ["io"]),
        exact_profile(erspi=erspi, response_time=tau),
        [],
    )


def _search(name, chunk=5, tau=1.0, decay=None):
    return TableSearchService(
        signature(name, ["A", "B"], ["io"]),
        search_profile(chunk_size=chunk, response_time=tau, decay=decay),
        [],
        score=lambda row: 0.0,
    )


class TestRegistration:
    def test_register_and_lookup(self):
        registry = ServiceRegistry()
        service = _exact("s")
        registry.register(service)
        assert registry.service("s") is service
        assert registry.profile("s").erspi == 1.0
        assert registry.signature("s").name == "s"
        assert "s" in registry and len(registry) == 1

    def test_duplicate_rejected(self):
        registry = ServiceRegistry()
        registry.register(_exact("s"))
        with pytest.raises(SchemaError):
            registry.register(_exact("s"))

    def test_unknown_lookup(self):
        with pytest.raises(RegistryError):
            ServiceRegistry().service("nope")

    def test_schema_view(self):
        registry = ServiceRegistry()
        registry.register(_exact("a"))
        registry.register(_search("b"))
        schema = registry.schema()
        assert schema.names == ("a", "b")


class TestJoinMethods:
    def test_explicit_registration_wins(self):
        registry = ServiceRegistry()
        registry.register(_search("x"))
        registry.register(_search("y"))
        registry.register_join_method("x", "y", JoinMethod.NESTED_LOOP)
        assert registry.join_method("x", "y") is JoinMethod.NESTED_LOOP
        assert registry.join_method("y", "x") is JoinMethod.NESTED_LOOP  # symmetric

    def test_default_merge_scan_without_decay(self):
        # "Since no decay is known for either hotel or flight,
        # merge-scan is used" (Example 5.1).
        registry = ServiceRegistry()
        registry.register(_search("flight", chunk=25))
        registry.register(_search("hotel", chunk=5))
        assert registry.join_method("flight", "hotel") is JoinMethod.MERGE_SCAN

    def test_default_nested_loop_with_one_quick_side(self):
        registry = ServiceRegistry()
        registry.register(_search("blast", chunk=10, decay=15))  # tops out in 2 fetches
        registry.register(_search("deep", chunk=10))
        assert registry.join_method("blast", "deep") is JoinMethod.NESTED_LOOP

    def test_default_nested_loop_with_selective_exact_side(self):
        registry = ServiceRegistry()
        registry.register(_exact("lookup", erspi=0.5))
        registry.register(_search("deep", chunk=10))
        assert registry.join_method("lookup", "deep") is JoinMethod.NESTED_LOOP

    def test_two_selective_sides_use_merge_scan(self):
        registry = ServiceRegistry()
        registry.register(_exact("a", erspi=0.5))
        registry.register(_exact("b", erspi=0.5))
        assert registry.join_method("a", "b") is JoinMethod.MERGE_SCAN


class TestJoinSelectivities:
    def test_default_selectivity(self):
        registry = ServiceRegistry()
        assert registry.join_selectivity("a", "b") == pytest.approx(0.01)

    def test_registered_selectivity(self):
        registry = ServiceRegistry()
        registry.register_join_selectivity("a", "b", 0.5)
        assert registry.join_selectivity("b", "a") == pytest.approx(0.5)

    def test_invalid_selectivity_rejected(self):
        with pytest.raises(ValueError):
            ServiceRegistry().register_join_selectivity("a", "b", 1.5)


class TestResetAll:
    def test_reset_clears_remote_caches(self):
        from repro.model.schema import AccessPattern

        registry = ServiceRegistry()
        service = TableExactService(
            signature("s", ["A", "B"], ["io"]),
            exact_profile(erspi=1, response_time=5.0),
            [("a", 1)],
            remote_caching=True,
        )
        registry.register(service)
        service.invoke(AccessPattern("io"), {0: "a"})
        registry.reset_all()
        fresh = service.invoke(AccessPattern("io"), {0: "a"})
        assert fresh.latency == pytest.approx(5.0)
