"""Unit tests for the plan DAG container."""

import pytest

from repro.model.atoms import atom
from repro.model.schema import AccessPattern
from repro.plans.dag import PlanError, QueryPlan
from repro.plans.nodes import InputNode, JoinNode, OutputNode, ServiceNode
from repro.services.profile import exact_profile
from repro.services.registry import JoinMethod


def _service_node(name="s", index=0):
    return ServiceNode(
        atom_index=index,
        atom=atom(name, "X"),
        pattern=AccessPattern("o"),
        profile=exact_profile(erspi=2.0, response_time=1.0),
    )


@pytest.fixture()
def linear_plan():
    plan = QueryPlan()
    start = plan.add_node(InputNode())
    first = plan.add_node(_service_node("a", 0))
    second = plan.add_node(_service_node("b", 1))
    end = plan.add_node(OutputNode())
    plan.add_arc(start, first)
    plan.add_arc(first, second)
    plan.add_arc(second, end)
    return plan


@pytest.fixture()
def diamond_plan():
    plan = QueryPlan()
    start = plan.add_node(InputNode())
    root = plan.add_node(_service_node("root", 0))
    left = plan.add_node(_service_node("left", 1))
    right = plan.add_node(_service_node("right", 2))
    join = plan.add_node(JoinNode(method=JoinMethod.MERGE_SCAN))
    end = plan.add_node(OutputNode())
    plan.add_arc(start, root)
    plan.add_arc(root, left)
    plan.add_arc(root, right)
    plan.add_arc(left, join)
    plan.add_arc(right, join)
    plan.add_arc(join, end)
    return plan


class TestConstruction:
    def test_single_input_enforced(self):
        plan = QueryPlan()
        plan.add_node(InputNode())
        with pytest.raises(PlanError):
            plan.add_node(InputNode())

    def test_single_output_enforced(self):
        plan = QueryPlan()
        plan.add_node(OutputNode())
        with pytest.raises(PlanError):
            plan.add_node(OutputNode())

    def test_duplicate_node_rejected(self):
        plan = QueryPlan()
        node = _service_node()
        plan.add_node(node)
        with pytest.raises(PlanError):
            plan.add_node(node)

    def test_arc_requires_registered_nodes(self):
        plan = QueryPlan()
        inside = plan.add_node(InputNode())
        outside = _service_node()
        with pytest.raises(PlanError):
            plan.add_arc(inside, outside)

    def test_duplicate_arcs_are_idempotent(self, linear_plan):
        first = linear_plan.service_nodes[0]
        second = linear_plan.service_nodes[1]
        before = len(linear_plan.arcs())
        linear_plan.add_arc(first, second)
        assert len(linear_plan.arcs()) == before


class TestAccessors:
    def test_node_kinds(self, diamond_plan):
        assert len(diamond_plan.service_nodes) == 3
        assert len(diamond_plan.join_nodes) == 1
        assert len(diamond_plan) == 6

    def test_service_node_for_atom(self, diamond_plan):
        assert diamond_plan.service_node_for_atom(2).service_name == "right"
        with pytest.raises(PlanError):
            diamond_plan.service_node_for_atom(9)

    def test_predecessors_successors(self, diamond_plan):
        join = diamond_plan.join_nodes[0]
        assert {n.service_name for n in diamond_plan.predecessors(join)} == {
            "left", "right"
        }
        assert diamond_plan.successors(join) == (diamond_plan.output_node,)


class TestGraphAlgorithms:
    def test_topological_order(self, diamond_plan):
        order = [n.node_id for n in diamond_plan.topological_order()]
        position = {nid: k for k, nid in enumerate(order)}
        for origin, destination in diamond_plan.arcs():
            assert position[origin.node_id] < position[destination.node_id]

    def test_cycle_detection(self):
        plan = QueryPlan()
        first = plan.add_node(_service_node("a", 0))
        second = plan.add_node(_service_node("b", 1))
        plan.add_arc(first, second)
        plan.add_arc(second, first)
        with pytest.raises(PlanError):
            plan.topological_order()

    def test_paths_linear(self, linear_plan):
        paths = linear_plan.paths()
        assert len(paths) == 1
        assert len(paths[0]) == 4

    def test_paths_diamond(self, diamond_plan):
        paths = diamond_plan.paths()
        assert len(paths) == 2
        for path in paths:
            assert path[0] is diamond_plan.input_node
            assert path[-1] is diamond_plan.output_node

    def test_ancestors_descendants(self, diamond_plan):
        join = diamond_plan.join_nodes[0]
        ancestor_names = {
            diamond_plan.node(i).label for i in diamond_plan.ancestors(join)
        }
        assert "IN" in ancestor_names
        root = diamond_plan.service_node_for_atom(0)
        assert diamond_plan.output_node.node_id in diamond_plan.descendants(root)

    def test_upstream_service_nodes(self, diamond_plan):
        join = diamond_plan.join_nodes[0]
        names = {n.service_name for n in diamond_plan.upstream_service_nodes(join)}
        assert names == {"root", "left", "right"}


class TestValidation:
    def test_valid_plans_pass(self, linear_plan, diamond_plan):
        linear_plan.validate()
        diamond_plan.validate()

    def test_unreachable_node_detected(self, linear_plan):
        linear_plan.add_node(_service_node("stray", 7))
        with pytest.raises(PlanError):
            linear_plan.validate()

    def test_join_arity_enforced(self):
        plan = QueryPlan()
        start = plan.add_node(InputNode())
        join = plan.add_node(JoinNode())
        end = plan.add_node(OutputNode())
        plan.add_arc(start, join)
        plan.add_arc(join, end)
        with pytest.raises(PlanError):
            plan.validate()

    def test_missing_input_node(self):
        plan = QueryPlan()
        plan.add_node(OutputNode())
        with pytest.raises(PlanError):
            plan.validate()
