"""Tests for the synthetic workload generator."""

import pytest

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.optimizer.patterns import permissible_sequences
from repro.sources.synthetic import generate_workload, workload_family


class TestGeneration:
    def test_deterministic(self):
        first = generate_workload(n_services=3, seed=11)
        second = generate_workload(n_services=3, seed=11)
        assert str(first.query) == str(second.query)
        for name in first.registry.names:
            assert (
                first.registry.service(name).rows
                == second.registry.service(name).rows
            )

    def test_different_seeds_differ(self):
        first = generate_workload(n_services=3, seed=11)
        second = generate_workload(n_services=3, seed=12)
        rows_first = first.registry.service("s0").rows
        rows_second = second.registry.service("s0").rows
        assert rows_first != rows_second

    def test_query_is_executable(self):
        workload = generate_workload(n_services=4, seed=3)
        sequences = permissible_sequences(
            workload.query, workload.registry.schema()
        )
        assert sequences

    def test_size_parameter(self):
        for n in (1, 2, 5):
            workload = generate_workload(n_services=n, seed=5)
            assert len(workload.query.atoms) == n
            assert len(workload.registry) == n

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_workload(n_services=0)

    def test_family_sizes(self):
        family = workload_family(sizes=(2, 3))
        assert [w.n_services for w in family] == [2, 3]


class TestOptimizeAndExecute:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_optimize_small_workloads(self, seed):
        workload = generate_workload(n_services=3, seed=seed)
        best = Optimizer(
            workload.registry,
            RequestResponseMetric(),
            OptimizerConfig(k=3, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(workload.query)
        assert best.plan.service_nodes

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_execute_optimized_plan(self, seed):
        workload = generate_workload(n_services=3, seed=seed)
        best = Optimizer(
            workload.registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=3, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(workload.query)
        result = execute_plan(
            best.plan, workload.registry, head=workload.query.head
        )
        # Chain data is random: the plan must run; answers may be few.
        assert result.stats.total_calls >= 1

    def test_answers_satisfy_predicates(self):
        workload = generate_workload(n_services=3, seed=9)
        best = Optimizer(
            workload.registry,
            RequestResponseMetric(),
            OptimizerConfig(k=3),
        ).optimize(workload.query)
        result = execute_plan(
            best.plan, workload.registry, head=workload.query.head
        )
        for row in result.rows:
            for predicate in workload.query.predicates:
                assert predicate.holds(row.bindings)
