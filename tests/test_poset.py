"""Unit tests for the Poset helper (precedence relations over atoms)."""

import pytest

from repro.plans.builder import Poset, chain_poset, parallel_after
from repro.plans.dag import PlanError


class TestClosure:
    def test_transitive_closure(self):
        poset = Poset(n=3, pairs=frozenset({(0, 1), (1, 2)}))
        assert (0, 2) in poset.closure()

    def test_cycle_detected(self):
        poset = Poset(n=2, pairs=frozenset({(0, 1), (1, 0)}))
        with pytest.raises(PlanError):
            poset.closure()

    def test_reflexive_pair_rejected(self):
        with pytest.raises(PlanError):
            Poset(n=2, pairs=frozenset({(0, 0)}))

    def test_out_of_range_rejected(self):
        with pytest.raises(PlanError):
            Poset(n=2, pairs=frozenset({(0, 5)}))

    def test_empty_poset(self):
        poset = Poset(n=3)
        assert poset.closure() == frozenset()


class TestStructure:
    def test_predecessors(self):
        poset = Poset(n=3, pairs=frozenset({(0, 1), (1, 2)}))
        assert poset.predecessors_of(2) == {0, 1}
        assert poset.predecessors_of(0) == frozenset()

    def test_direct_predecessors_reduce_transitivity(self):
        poset = Poset(n=3, pairs=frozenset({(0, 1), (1, 2), (0, 2)}))
        assert poset.direct_predecessors_of(2) == {1}

    def test_direct_predecessors_keep_antichain(self):
        diamond = Poset(n=4, pairs=frozenset({(0, 1), (0, 2), (1, 3), (2, 3)}))
        assert diamond.direct_predecessors_of(3) == {1, 2}

    def test_minimal_and_maximal(self):
        poset = Poset(n=4, pairs=frozenset({(0, 1), (0, 2)}))
        assert poset.minimal_elements() == {0, 3}
        assert poset.maximal_elements() == {1, 2, 3}

    def test_is_chain(self):
        assert chain_poset(3, [2, 0, 1]).is_chain()
        assert not Poset(n=3, pairs=frozenset({(0, 1)})).is_chain()


class TestConstructors:
    def test_chain_poset(self):
        poset = chain_poset(3, [2, 0, 1])
        assert (2, 0) in poset.closure()
        assert (2, 1) in poset.closure()
        assert (0, 1) in poset.closure()

    def test_chain_poset_rejects_non_permutation(self):
        with pytest.raises(PlanError):
            chain_poset(3, [0, 1])

    def test_parallel_after(self):
        poset = parallel_after(4, first=2)
        closure = poset.closure()
        assert {(2, 0), (2, 1), (2, 3)} <= closure
        assert len(closure) == 3  # the others stay incomparable
