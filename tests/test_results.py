"""Unit tests for result rows and ranking composition."""

from repro.execution.results import ResultTable, Row, compose_ranking
from repro.model.terms import Variable


def _row(ranks=(), **bindings):
    return Row(
        bindings={Variable(k): v for k, v in bindings.items()},
        ranks=tuple(ranks),
    )


class TestRow:
    def test_value(self):
        row = _row(City="Roma")
        assert row.value(Variable("City")) == "Roma"

    def test_rank_key_sums_indexes(self):
        row = _row(ranks=[("a", 2), ("b", 5)])
        assert row.rank_key() == 7

    def test_with_rank_appends(self):
        row = _row(ranks=[("a", 1)]).with_rank("b", 4)
        assert row.ranks == (("a", 1), ("b", 4))

    def test_merge_compatible(self):
        merged = _row(City="Roma", F=1).merged_with(_row(City="Roma", H=2))
        assert merged is not None
        assert merged.bindings[Variable("F")] == 1
        assert merged.bindings[Variable("H")] == 2

    def test_merge_conflicting_returns_none(self):
        assert _row(City="Roma").merged_with(_row(City="Milano")) is None

    def test_merge_concatenates_ranks(self):
        merged = _row(ranks=[("a", 1)], A=1).merged_with(_row(ranks=[("b", 2)], B=2))
        assert merged.ranks == (("a", 1), ("b", 2))

    def test_project(self):
        row = _row(City="Roma", Price=90)
        assert row.project([Variable("Price"), Variable("City")]) == (90, "Roma")


class TestComposeRanking:
    def test_orders_by_aggregate_rank(self):
        rows = [_row(ranks=[("a", 3)], X=1), _row(ranks=[("a", 1)], X=2)]
        ordered = compose_ranking(rows)
        assert [r.bindings[Variable("X")] for r in ordered] == [2, 1]

    def test_stable_on_ties(self):
        rows = [_row(ranks=[("a", 1)], X=1), _row(ranks=[("a", 1)], X=2)]
        ordered = compose_ranking(rows)
        assert [r.bindings[Variable("X")] for r in ordered] == [1, 2]

    def test_dominated_rows_never_precede(self):
        better = _row(ranks=[("a", 0), ("b", 1)], X="good")
        worse = _row(ranks=[("a", 2), ("b", 3)], X="bad")
        ordered = compose_ranking([worse, better])
        assert ordered[0].bindings[Variable("X")] == "good"

    def test_top_k_heap_path_matches_full_sort(self):
        rows = [
            _row(ranks=[("a", rank)], X=index)
            for index, rank in enumerate([5, 1, 3, 1, 0, 4, 1, 2])
        ]
        full = compose_ranking(rows)
        for k in range(len(rows) + 2):
            assert compose_ranking(rows, k=k) == full[:k]
        assert compose_ranking(rows, k=None) == full

    def test_duplicate_ranks_heap_path_keeps_arrival_order(self):
        """Regression for the documented (rank_key, arrival) contract:
        with many duplicate composed ranks, the heap path must return
        the *earliest-arriving* rows of each tie class, in arrival
        order — exactly the full stable sort truncated, and exactly
        what the streamed pipeline emits."""
        rows = [
            _row(ranks=[("a", rank)], X=index)
            for index, rank in enumerate([1, 1, 0, 1, 0, 1, 0, 1, 1])
        ]
        full = compose_ranking(rows)
        # ties resolved by arrival: all rank-0 rows first (X = 2, 4, 6),
        # then the rank-1 rows in arrival order.
        assert [r.bindings[Variable("X")] for r in full] == [2, 4, 6, 0, 1, 3, 5, 7, 8]
        for k in range(len(rows) + 1):
            assert compose_ranking(rows, k=k) == full[:k]

    def test_identical_rows_tie_broken_by_position(self):
        """Even fully identical rows (equal bindings *and* ranks) must
        not trip the heap path: the arrival index decorates the heap
        entries, so Row objects are never compared."""
        row = _row(ranks=[("a", 1)], X=0)
        rows = [row, _row(ranks=[("a", 1)], X=0), row]
        for k in range(len(rows) + 1):
            assert compose_ranking(rows, k=k) == rows[:k]


class TestResultTable:
    def test_top_and_tuples(self):
        head = (Variable("City"),)
        table = ResultTable(
            head=head,
            rows=[_row(City="Roma"), _row(City="Milano"), _row(City="Paris")],
        )
        assert len(table) == 3
        assert table.tuples(2) == [("Roma",), ("Milano",)]
        assert len(table.top(2)) == 2

    def test_render_contains_header_and_rows(self):
        head = (Variable("City"), Variable("Price"))
        table = ResultTable(head=head, rows=[_row(City="Roma", Price=90)])
        text = table.render()
        assert "City" in text and "Price" in text
        assert "Roma" in text and "90" in text
        assert text.splitlines()[1].startswith("-")

    def test_render_empty(self):
        table = ResultTable(head=(Variable("City"),))
        assert "City" in table.render()
