"""Unit tests for service profiles (erspi, chunking, decay)."""

import pytest

from repro.services.profile import (
    ProfileError,
    ServiceKind,
    ServiceProfile,
    exact_profile,
    search_profile,
)


class TestConstruction:
    def test_exact_profile(self):
        profile = exact_profile(erspi=20.0, response_time=1.2)
        assert profile.kind is ServiceKind.EXACT
        assert profile.is_exact and not profile.is_search
        assert profile.is_bulk and not profile.is_chunked

    def test_search_profile_defaults_erspi_to_chunk(self):
        profile = search_profile(chunk_size=25, response_time=9.7)
        assert profile.erspi == 25.0
        assert profile.is_chunked

    def test_search_requires_chunking(self):
        with pytest.raises(ProfileError):
            ServiceProfile(
                kind=ServiceKind.SEARCH, erspi=10, response_time=1.0
            )

    def test_negative_erspi_rejected(self):
        with pytest.raises(ProfileError):
            exact_profile(erspi=-1, response_time=1.0)

    def test_negative_response_time_rejected(self):
        with pytest.raises(ProfileError):
            exact_profile(erspi=1, response_time=-1.0)

    def test_zero_chunk_rejected(self):
        with pytest.raises(ProfileError):
            exact_profile(erspi=1, response_time=1.0, chunk_size=0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ProfileError):
            exact_profile(erspi=1, response_time=1.0, cost_per_call=-1)


class TestClassification:
    def test_selective_vs_proliferative(self):
        assert exact_profile(erspi=0.05, response_time=1).is_selective
        assert exact_profile(erspi=1.0, response_time=1).is_selective
        assert exact_profile(erspi=20.0, response_time=1).is_proliferative

    def test_search_is_normally_proliferative(self):
        assert search_profile(chunk_size=25, response_time=1).is_proliferative


class TestDecay:
    def test_max_fetches_from_decay(self):
        profile = search_profile(chunk_size=10, response_time=1, decay=30)
        assert profile.max_fetches() == 3

    def test_max_fetches_rounds_up(self):
        profile = search_profile(chunk_size=10, response_time=1, decay=25)
        assert profile.max_fetches() == 3

    def test_max_fetches_at_least_one(self):
        profile = search_profile(chunk_size=10, response_time=1, decay=3)
        assert profile.max_fetches() == 1

    def test_no_decay_means_unbounded(self):
        assert search_profile(chunk_size=10, response_time=1).max_fetches() is None

    def test_bulk_service_has_no_fetch_bound(self):
        assert exact_profile(erspi=1, response_time=1).max_fetches() is None

    def test_invalid_decay_rejected(self):
        with pytest.raises(ProfileError):
            search_profile(chunk_size=10, response_time=1, decay=0)


class TestHelpers:
    def test_with_cost(self):
        profile = exact_profile(erspi=1, response_time=1)
        priced = profile.with_cost(2.5)
        assert priced.cost_per_call == 2.5
        assert profile.cost_per_call == 1.0  # original untouched

    def test_describe_mentions_kind_and_chunk(self):
        text = search_profile(chunk_size=5, response_time=4.9).describe()
        assert "search" in text
        assert "chunk=5" in text
