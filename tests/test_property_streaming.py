"""Differential suite for the streaming early-exit top-k pipeline.

The streamed execution path must be **bit-identical** — same rows,
same ranks, same emission order — to ``compose_ranking`` over the
full-scan oracle:

* at the join level, :class:`JoinStream` / :func:`execute_join_streamed`
  against ``compose_ranking(execute_join(...), k)`` (and the hashed
  join, which PR 1 proved identical to the full scan), for random
  inputs, random *non-monotone* rank annotations, both strategies and
  arbitrary k — including k = 0 and k beyond the plane;
* at the engine level, ``ExecutionMode.STREAMED`` against
  ``ExecutionMode.PARALLEL`` on plans built over random service
  tables, for both join methods — including the demand-driven lazy
  fetch path under *random chunk sizes* (both against the oracle and
  against the eager streamed path, which must never fetch less).

The suite also pins the early-exit bookkeeping: proving a top-k
complete for ``k >= n*m`` requires visiting the whole plane, so
``early_exit_cells_skipped`` must be 0 there.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.joins import (
    JoinStream,
    execute_join,
    execute_join_hashed,
    execute_join_streamed,
)
from repro.execution.results import Row, compose_ranking
from repro.model.atoms import Atom
from repro.model.predicates import BinaryExpression, Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService

METHODS = (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)


def _signature(rows):
    return [(dict(r.bindings), r.ranks) for r in rows]


def _ranked_side(keys, ranks, side_name):
    """Rows with a shared K, a per-side index, and explicit ranks."""
    variable = Variable(side_name)
    return [
        Row(
            bindings={Variable("K"): key, variable: index},
            ranks=((side_name, ranks[index]),),
        )
        for index, key in enumerate(keys)
    ]


_keys = st.lists(st.integers(0, 3), min_size=0, max_size=6)
_ranks = st.lists(st.integers(0, 9), min_size=6, max_size=6)
_k = st.one_of(st.none(), st.integers(0, 40))


class TestStreamedJoinMatchesOracle:
    """``execute_join_streamed`` vs. the full-scan / hashed oracles."""

    @given(_keys, _keys, _ranks, _ranks, _k)
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_compose_ranking(self, lk, rk, lr, rr, k):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        for method in METHODS:
            oracle = compose_ranking(execute_join(method, left, right), k)
            hashed = compose_ranking(execute_join_hashed(method, left, right), k)
            streamed = execute_join_streamed(method, left, right, k=k)
            assert _signature(streamed) == _signature(oracle)
            assert _signature(streamed) == _signature(hashed)

    @given(_keys, _keys, _ranks, _ranks, _k)
    @settings(max_examples=60, deadline=None)
    def test_identical_under_predicates(self, lk, rk, lr, rr, k):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        predicate = Comparison(
            BinaryExpression("+", Variable("L"), Variable("R")), "<", Constant(5)
        )
        for method in METHODS:
            oracle = compose_ranking(
                execute_join(method, left, right, [predicate]), k
            )
            streamed = execute_join_streamed(
                method, left, right, [predicate], k=k
            )
            assert _signature(streamed) == _signature(oracle)

    @given(_keys, _keys, _ranks, _ranks)
    @settings(max_examples=60, deadline=None)
    def test_no_cells_skipped_when_k_covers_plane(self, lk, rk, lr, rr):
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        plane = len(left) * len(right)
        for method in METHODS:
            for k in (plane, plane + 3):
                stream = JoinStream(method, left, right)
                stream.top(k)
                assert stream.cells_skipped == 0
                assert stream.cells_visited == plane

    @given(_keys, _keys, _ranks, _ranks, st.integers(0, 8), st.integers(0, 40))
    @settings(max_examples=80, deadline=None)
    def test_resumed_stream_matches_oracle_at_larger_k(
        self, lk, rk, lr, rr, k1, k2_extra
    ):
        """top(k1) then top(k2): the resumed walk must still be exact."""
        left = _ranked_side(lk, lr, "L")
        right = _ranked_side(rk, rr, "R")
        k2 = k1 + k2_extra
        for method in METHODS:
            full = execute_join(method, left, right)
            stream = JoinStream(method, left, right)
            assert _signature(stream.top(k1)) == _signature(
                compose_ranking(full, k1)
            )
            visited_after_first = stream.cells_visited
            assert _signature(stream.top(k2)) == _signature(
                compose_ranking(full, k2)
            )
            # resuming never revisits: the walk only ever advances.
            assert stream.cells_visited >= visited_after_first
            assert _signature(stream.top(None)) == _signature(
                compose_ranking(full)
            )

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_early_exit_scales_with_k_on_monotone_ranks(self, n, m, k):
        """On rank-monotone inputs (what search services emit for one
        input tuple) the MS certificate closes the top-k after ~k
        cells, not n*m."""
        left = _ranked_side([0] * n, list(range(n)), "L")
        right = _ranked_side([0] * m, list(range(m)), "R")
        stream = JoinStream(JoinMethod.MERGE_SCAN, left, right)
        rows = stream.top(k)
        oracle = compose_ranking(execute_join(JoinMethod.MERGE_SCAN, left, right), k)
        assert _signature(rows) == _signature(oracle)
        if k < min(n, m):
            # at most the first k diagonals — O(k^2) cells, not n*m
            assert k <= stream.cells_visited <= k * (k + 1) // 2


class TestTieBreaking:
    """The documented (rank_key, arrival) order: heap path, sort path,
    and streamed path must agree on duplicate composed ranks."""

    def test_duplicate_ranks_agree_across_paths(self):
        # An all-matching plane where many cells share a composed rank.
        left = _ranked_side([0] * 4, [1, 1, 0, 0], "L")
        right = _ranked_side([0] * 4, [0, 1, 1, 0], "R")
        for method in METHODS:
            full = execute_join(method, left, right)
            sort_path = compose_ranking(full)
            for k in range(len(full) + 2):
                heap_path = compose_ranking(full, k)
                streamed = execute_join_streamed(method, left, right, k=k)
                assert _signature(heap_path) == _signature(sort_path[:k])
                assert _signature(streamed) == _signature(sort_path[:k])


# -- engine level -----------------------------------------------------------


def _random_table_plan(left_keys, right_keys, method, chunks=(4, 4)):
    """A two-branch plan over random search tables, merged by *method*.

    Both services are fed from the input node (single feed tuple), so
    a STREAMED engine fetches them through lazy cursors; *chunks*
    randomizes their page sizes for the lazy differential tests.
    """
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            signature("lefts", ["Q", "K", "L"], ["ioo"]),
            search_profile(chunk_size=chunks[0], response_time=1.0),
            [("q", key, index) for index, key in enumerate(left_keys)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register(
        TableSearchService(
            signature("rights", ["Q", "K", "R"], ["ioo"]),
            search_profile(chunk_size=chunks[1], response_time=1.0),
            [("q", key, index) for index, key in enumerate(right_keys)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register_join_method("lefts", "rights", method)
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="stream",
        head=(key, left_var, right_var),
        atoms=(
            Atom("lefts", (Constant("q"), key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: 2, 1: 2},
    )
    return registry, query, plan


_table_keys = st.lists(st.integers(0, 2), min_size=1, max_size=6)


class TestStreamedEngineMatchesOracle:
    """``ExecutionMode.STREAMED`` vs. the full-scan engine on plans
    built over random service tables."""

    @given(_table_keys, _table_keys, st.integers(0, 12), st.sampled_from(METHODS))
    @settings(max_examples=25, deadline=None)
    def test_streamed_execution_bit_identical(self, lk, rk, k, method):
        registry, query, plan = _random_table_plan(lk, rk, method)
        head = tuple(query.head)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        streamed = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=k
        )
        expected = compose_ranking(oracle.rows, k)
        assert _signature(streamed.rows) == _signature(expected)
        assert streamed.stream is not None
        plane = streamed.stream.plane_cells
        assert (
            streamed.stats.streamed_cells_visited
            + streamed.stats.early_exit_cells_skipped
            == plane
        )
        if k >= plane:
            assert streamed.stats.early_exit_cells_skipped == 0
        if streamed.complete:
            assert _signature(streamed.rows) == _signature(
                compose_ranking(oracle.rows, k)
            )
        else:
            assert len(streamed.rows) == k

    @given(
        _table_keys,
        _table_keys,
        st.integers(0, 12),
        st.sampled_from(METHODS),
        st.integers(1, 5),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_lazy_fetching_bit_identical_under_random_chunks(
        self, lk, rk, k, method, chunk_left, chunk_right
    ):
        """The demand-driven fetch path (random page sizes) against the
        full-scan oracle and the eager streamed path: identical rows,
        never more remote work."""
        registry, query, plan = _random_table_plan(
            lk, rk, method, chunks=(chunk_left, chunk_right)
        )
        head = tuple(query.head)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        lazy = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head, k=k
        )
        eager = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=False
        ).execute(plan, head=head, k=k)
        expected = compose_ranking(oracle.rows, k)
        assert _signature(lazy.rows) == _signature(expected)
        assert _signature(eager.rows) == _signature(expected)
        assert lazy.stats.total_fetches <= eager.stats.total_fetches
        assert lazy.stats.total_tuples_fetched <= eager.stats.total_tuples_fetched
        assert eager.stats.lazy_tuples_fetched == 0

    @given(_table_keys, _table_keys, st.sampled_from(METHODS))
    @settings(max_examples=15, deadline=None)
    def test_streamed_without_k_is_plain_execution(self, lk, rk, method):
        registry, query, plan = _random_table_plan(lk, rk, method)
        head = tuple(query.head)
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        streamed = ExecutionEngine(registry, mode=ExecutionMode.STREAMED).execute(
            plan, head=head
        )
        assert _signature(streamed.rows) == _signature(oracle.rows)
        assert streamed.stream is None
        assert streamed.complete
        assert streamed.stats.early_exit_cells_skipped == 0
