"""Cross-cutting tests: CLI reproduce, engine modes, misc edges."""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
)


class TestCliReproduce:
    def test_reproduce_command(self, capsys):
        from repro.__main__ import main

        assert main(["reproduce"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 8" in out
        assert "Figure 11" in out
        assert "calls match paper: True" in out


class TestEngineModes:
    @pytest.fixture()
    def plan(self, registry, travel_query):
        return PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )

    def test_sequential_slower_than_parallel_on_branching_plan(
        self, registry, travel_query, plan
    ):
        sequential = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.SEQUENTIAL
        ).execute(plan, head=travel_query.head)
        parallel = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.PARALLEL
        ).execute(plan, head=travel_query.head)
        # Plan O branches after weather: parallel overlaps the two
        # search services, sequential pays the sum.
        assert parallel.elapsed < sequential.elapsed
        assert frozenset(parallel.answers(None)) == frozenset(
            sequential.answers(None)
        )

    def test_remote_cache_preserved_when_not_reset(
        self, registry, travel_query, plan
    ):
        engine = ExecutionEngine(registry, CacheSetting.NO_CACHE)
        first = engine.execute(plan, head=travel_query.head)
        warm = engine.execute(
            plan, head=travel_query.head, reset_remote_caches=False
        )
        # Hotel (the Bookings analogue) answers every repeated call
        # from its own remote cache on the warm run; it spends less
        # busy time even though no logical cache is in place.
        first_hotel = first.stats.service("hotel")
        warm_hotel = warm.stats.service("hotel")
        assert warm_hotel.remote_cache_hits > first_hotel.remote_cache_hits
        assert warm_hotel.busy_time < first_hotel.busy_time

    def test_k_is_advisory_answers_trim(self, registry, travel_query, plan):
        engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
        result = engine.execute(plan, head=travel_query.head, k=3)
        assert len(result.answers()) == 3
        assert len(result.rows) > 3

    def test_empty_head_projects_empty_tuples(self, registry, plan):
        engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
        result = engine.execute(plan, head=())
        assert result.answers(2) == [(), ()]


class TestRankComposition:
    def test_top_answer_is_cheap_pair(self, registry, travel_query):
        """The composed ranking puts low flight-rank + low hotel-rank
        combinations first; both services rank by ascending price."""
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
        result = engine.execute(plan, head=travel_query.head)
        head_names = [v.name for v in travel_query.head]
        f_index = head_names.index("FPrice")
        h_index = head_names.index("HPrice")
        best = result.rows[0]
        first = best.project(tuple(travel_query.head))
        # Every answer in the same city/date block costs at least as
        # much on both components as the top-ranked one.
        city_index = head_names.index("City")
        for row in result.rows[1:]:
            answer = row.project(tuple(travel_query.head))
            if answer[city_index] != first[city_index]:
                continue
            assert (
                answer[f_index] >= first[f_index]
                or answer[h_index] >= first[h_index]
            )

    def test_rank_key_zero_for_exact_only_rows(self):
        from repro.execution.results import Row

        assert Row(bindings={}).rank_key() == 0


class TestWorldHelpers:
    def test_city_dates_stable(self):
        from repro.sources.world import city_dates

        assert city_dates("Cancun") == city_dates("Cancun")
        start, end = city_dates("Cancun")
        assert start < end

    def test_all_cities_property(self, world):
        assert len(world.all_cities) == 54
