"""Property-based tests for the Poset helper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans.builder import Poset
from repro.plans.dag import PlanError


@st.composite
def _random_dags(draw):
    """Random acyclic pair sets: only i < j arcs, so no cycles."""
    n = draw(st.integers(1, 6))
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                pairs.add((i, j))
    return Poset(n=n, pairs=frozenset(pairs))


class TestClosureProperties:
    @given(_random_dags())
    @settings(max_examples=80)
    def test_closure_contains_pairs(self, poset):
        assert poset.pairs <= poset.closure()

    @given(_random_dags())
    @settings(max_examples=80)
    def test_closure_is_transitive(self, poset):
        closure = poset.closure()
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure

    @given(_random_dags())
    @settings(max_examples=80)
    def test_closure_idempotent(self, poset):
        once = poset.closure()
        again = Poset(n=poset.n, pairs=once).closure()
        assert once == again

    @given(_random_dags())
    @settings(max_examples=80)
    def test_closure_irreflexive_and_antisymmetric(self, poset):
        closure = poset.closure()
        for a, b in closure:
            assert a != b
            assert (b, a) not in closure


class TestStructureProperties:
    @given(_random_dags())
    @settings(max_examples=80)
    def test_direct_predecessors_are_predecessors(self, poset):
        for index in range(poset.n):
            direct = poset.direct_predecessors_of(index)
            assert direct <= poset.predecessors_of(index)

    @given(_random_dags())
    @settings(max_examples=80)
    def test_direct_predecessors_form_antichain(self, poset):
        closure = poset.closure()
        for index in range(poset.n):
            direct = sorted(poset.direct_predecessors_of(index))
            for a in direct:
                for b in direct:
                    if a != b:
                        assert (a, b) not in closure

    @given(_random_dags())
    @settings(max_examples=80)
    def test_minimal_maximal_cover_isolated(self, poset):
        minimal = poset.minimal_elements()
        maximal = poset.maximal_elements()
        closure = poset.closure()
        involved = {a for a, _ in closure} | {b for _, b in closure}
        isolated = set(range(poset.n)) - involved
        assert isolated <= minimal
        assert isolated <= maximal

    @given(_random_dags())
    @settings(max_examples=80)
    def test_chain_iff_all_comparable(self, poset):
        closure = poset.closure()
        all_comparable = all(
            (a, b) in closure or (b, a) in closure
            for a in range(poset.n)
            for b in range(a + 1, poset.n)
        )
        assert poset.is_chain() == all_comparable


class TestCycleRejection:
    @given(st.integers(2, 5))
    def test_cycles_raise(self, n):
        cycle = {(i, (i + 1) % n) for i in range(n)}
        import pytest

        with pytest.raises(PlanError):
            Poset(n=n, pairs=frozenset(cycle)).closure()
