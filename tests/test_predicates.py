"""Unit tests for comparison predicates and selectivity estimation."""

import pytest

from repro.model.predicates import (
    BinaryExpression,
    Comparison,
    PredicateError,
    add,
    combined_selectivity,
    comparison,
    evaluate_expression,
    expression_variables,
)
from repro.model.terms import Constant, Variable


class TestExpressions:
    def test_variables_of_sum(self):
        expr = add("FPrice", "HPrice")
        assert expression_variables(expr) == {Variable("FPrice"), Variable("HPrice")}

    def test_evaluate_sum(self):
        expr = add("FPrice", "HPrice")
        value = evaluate_expression(
            expr, {Variable("FPrice"): 700, Variable("HPrice"): 400}
        )
        assert value == 1100

    def test_evaluate_nested(self):
        expr = BinaryExpression("*", add("A", "B"), Constant(2))
        assert evaluate_expression(expr, {Variable("A"): 1, Variable("B"): 2}) == 6

    def test_unbound_variable_raises(self):
        with pytest.raises(PredicateError):
            evaluate_expression(Variable("X"), {})

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            BinaryExpression("/", Constant(1), Constant(2))


class TestComparison:
    def test_holds_numeric(self):
        predicate = comparison("Temperature", ">=", 28)
        assert predicate.holds({Variable("Temperature"): 30})
        assert not predicate.holds({Variable("Temperature"): 20})

    def test_holds_string_dates(self):
        predicate = comparison("Start", ">=", "2008-04-01")
        assert predicate.holds({Variable("Start"): "2008-05-01"})
        assert not predicate.holds({Variable("Start"): "2008-03-01"})

    def test_holds_arithmetic(self):
        predicate = Comparison(add("FPrice", "HPrice"), "<", Constant(2000))
        assert predicate.holds({Variable("FPrice"): 900, Variable("HPrice"): 900})
        assert not predicate.holds(
            {Variable("FPrice"): 1500, Variable("HPrice"): 800}
        )

    def test_type_mismatch_raises(self):
        predicate = comparison("X", "<", 10)
        with pytest.raises(PredicateError):
            predicate.holds({Variable("X"): "a-string"})

    def test_variables(self):
        predicate = Comparison(add("A", "B"), "<", Variable("C"))
        assert predicate.variables == {Variable("A"), Variable("B"), Variable("C")}

    def test_is_evaluable(self):
        predicate = comparison("X", "==", 1)
        assert predicate.is_evaluable(frozenset({Variable("X")}))
        assert not predicate.is_evaluable(frozenset())

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            comparison("X", "~", 1)

    def test_equality_and_inequality_operators(self):
        eq = comparison("X", "==", 5)
        ne = comparison("X", "!=", 5)
        binding = {Variable("X"): 5}
        assert eq.holds(binding)
        assert not ne.holds(binding)


class TestSelectivity:
    def test_explicit_selectivity_wins(self):
        predicate = comparison("X", ">=", 1, selectivity=0.05)
        assert predicate.estimated_selectivity() == 0.05

    def test_default_by_operator(self):
        assert comparison("X", "==", 1).estimated_selectivity() == pytest.approx(0.1)
        assert comparison("X", ">=", 1).estimated_selectivity() == pytest.approx(1 / 3)

    def test_selectivity_bounds_enforced(self):
        with pytest.raises(PredicateError):
            comparison("X", "==", 1, selectivity=1.5)

    def test_combined_selectivity_is_product(self):
        predicates = (
            comparison("X", "==", 1, selectivity=0.5),
            comparison("Y", "==", 1, selectivity=0.2),
        )
        assert combined_selectivity(predicates) == pytest.approx(0.1)

    def test_combined_selectivity_empty(self):
        assert combined_selectivity(()) == 1.0
