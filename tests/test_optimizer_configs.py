"""Coverage of optimizer configuration combinations."""

import pytest

from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.optimizer import Optimizer, OptimizerConfig


class TestFetchHeuristicConfig:
    def test_square_heuristic_through_optimizer(self, registry, travel_query):
        best = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, fetch_heuristic="square"),
        ).optimize(travel_query)
        assert best.expected_answers >= 10

    def test_no_fetch_exploration(self, registry, travel_query):
        heuristic_only = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, explore_fetches=False),
        ).optimize(travel_query)
        explored = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, explore_fetches=True),
        ).optimize(travel_query)
        assert heuristic_only.expected_answers >= 10
        assert explored.cost <= heuristic_only.cost + 1e-9

    def test_square_and_greedy_agree_on_optimum_cost(self, registry, travel_query):
        """With exploration on, the starting heuristic cannot change
        the final optimum."""
        costs = set()
        for heuristic in ("greedy", "square"):
            best = Optimizer(
                registry,
                ExecutionTimeMetric(),
                OptimizerConfig(k=10, fetch_heuristic=heuristic),
            ).optimize(travel_query)
            costs.add(round(best.cost, 6))
        assert len(costs) == 1


class TestCacheSettingConfig:
    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_every_cache_setting_optimizes(self, registry, travel_query, setting):
        best = Optimizer(
            registry,
            RequestResponseMetric(),
            OptimizerConfig(k=10, cache_setting=setting),
        ).optimize(travel_query)
        assert best.expected_answers >= 10

    def test_no_cache_plans_cost_more_requests(self, registry, travel_query):
        metric = RequestResponseMetric()
        cached = Optimizer(
            registry, metric,
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        uncached = Optimizer(
            registry, metric,
            OptimizerConfig(k=10, cache_setting=CacheSetting.NO_CACHE),
        ).optimize(travel_query)
        assert uncached.cost >= cached.cost - 1e-9


class TestTopologyBudget:
    def test_budget_limits_completed_plans(self, registry, travel_query):
        budgeted = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, max_topologies_per_sequence=3),
        ).optimize(travel_query)
        # Heuristic seeds plus at most 3 enumerated topologies per
        # pattern sequence.
        assert budgeted.stats.plans_completed <= 3 * 3 + 2 * 3
        assert budgeted.expected_answers >= 10
