"""Unit tests for execution statistics."""

from repro.execution.stats import ExecutionStats, ServiceCallStats


class TestServiceCallStats:
    def test_record_fetch(self):
        stats = ServiceCallStats()
        stats.record_fetch(2.5, from_remote_cache=False)
        stats.record_fetch(0.1, from_remote_cache=True)
        assert stats.fetches == 2
        assert stats.remote_cache_hits == 1
        assert stats.busy_time == 2.6


class TestExecutionStats:
    def test_autocreate_per_service(self):
        stats = ExecutionStats()
        stats.service("weather").calls += 1
        assert stats.calls("weather") == 1
        assert stats.calls("unseen") == 0

    def test_totals(self):
        stats = ExecutionStats()
        stats.service("a").calls = 3
        stats.service("a").fetches = 5
        stats.service("b").calls = 2
        stats.service("b").cache_hits = 7
        assert stats.total_calls == 5
        assert stats.total_fetches == 5
        assert stats.total_cache_hits == 7

    def test_summary_mentions_services(self):
        stats = ExecutionStats()
        stats.service("weather").calls = 71
        stats.elapsed = 374.0
        text = stats.summary()
        assert "weather" in text
        assert "374.0s" in text
        assert "calls=71" in text
