"""Unit tests for the term layer (variables and constants)."""

import pytest

from repro.model.terms import (
    Constant,
    Variable,
    constants_of,
    is_constant,
    is_variable,
    term_from_literal,
    variables_of,
)


class TestVariable:
    def test_name_is_kept(self):
        assert Variable("City").name == "City"

    def test_str_is_bare_name(self):
        assert str(Variable("City")) == "City"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_lowercase_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("city")

    def test_underscore_prefix_allowed(self):
        assert Variable("_tmp").name == "_tmp"

    def test_equality_by_name(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_hashable_and_usable_as_key(self):
        bindings = {Variable("X"): 1}
        assert bindings[Variable("X")] == 1


class TestConstant:
    def test_value_kept(self):
        assert Constant(42).value == 42

    def test_string_str_is_quoted(self):
        assert str(Constant("Milano")) == "'Milano'"

    def test_number_str_is_bare(self):
        assert str(Constant(3)) == "3"

    def test_unhashable_value_rejected(self):
        with pytest.raises(TypeError):
            Constant([1, 2])

    def test_equality_by_value(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")
        assert Constant(1) != Constant("1")


class TestTermFromLiteral:
    def test_uppercase_string_becomes_variable(self):
        assert term_from_literal("City") == Variable("City")

    def test_lowercase_string_becomes_constant(self):
        assert term_from_literal("milano") == Constant("milano")

    def test_number_becomes_constant(self):
        assert term_from_literal(28) == Constant(28)

    def test_existing_terms_pass_through(self):
        variable = Variable("X")
        constant = Constant(5)
        assert term_from_literal(variable) is variable
        assert term_from_literal(constant) is constant

    def test_uppercase_with_space_is_constant(self):
        assert term_from_literal("New York") == Constant("New York")


class TestHelpers:
    def test_is_variable_and_is_constant(self):
        assert is_variable(Variable("X"))
        assert not is_variable(Constant(1))
        assert is_constant(Constant(1))
        assert not is_constant(Variable("X"))

    def test_variables_of_preserves_order_and_duplicates(self):
        terms = (Variable("X"), Constant(1), Variable("Y"), Variable("X"))
        assert variables_of(terms) == (Variable("X"), Variable("Y"), Variable("X"))

    def test_constants_of(self):
        terms = (Variable("X"), Constant(1), Constant("a"))
        assert constants_of(terms) == (Constant(1), Constant("a"))
