"""Tests for the exhaustive oracle and the WSMS baseline."""

import pytest

from repro.baselines.exhaustive import exhaustive_optimize
from repro.baselines.wsms import greedy_selectivity_order, wsms_optimize
from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import BottleneckMetric, ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.optimizer import Optimizer, OptimizerConfig


class TestExhaustiveOracle:
    def test_matches_branch_and_bound_on_tiny(self, tiny_registry, tiny_query):
        metric = RequestResponseMetric()
        oracle = exhaustive_optimize(tiny_query, tiny_registry, metric, k=3)
        bnb = Optimizer(
            tiny_registry, metric, OptimizerConfig(k=3)
        ).optimize(tiny_query)
        assert bnb.cost == pytest.approx(oracle.cost)

    def test_matches_branch_and_bound_on_travel(self, registry, travel_query):
        metric = ExecutionTimeMetric()
        oracle = exhaustive_optimize(
            travel_query, registry, metric, k=10,
            cache_setting=CacheSetting.ONE_CALL,
        )
        bnb = Optimizer(
            registry, metric,
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        assert bnb.cost == pytest.approx(oracle.cost)

    def test_bnb_explores_no_more_plans(self, registry, travel_query):
        metric = ExecutionTimeMetric()
        oracle = exhaustive_optimize(travel_query, registry, metric, k=10)
        bnb = Optimizer(
            registry, metric, OptimizerConfig(k=10)
        ).optimize(travel_query)
        assert bnb.stats.plans_completed <= oracle.stats.plans_completed

    def test_weekend_agreement(self):
        from repro.sources.weekend import mahler_weekend_query, weekend_registry

        registry = weekend_registry()
        query = mahler_weekend_query()
        metric = ExecutionTimeMetric()
        oracle = exhaustive_optimize(query, registry, metric, k=3)
        bnb = Optimizer(registry, metric, OptimizerConfig(k=3)).optimize(query)
        assert bnb.cost == pytest.approx(oracle.cost)


class TestWsmsBaseline:
    def test_produces_a_chain(self, registry, travel_query):
        plan = wsms_optimize(travel_query, registry)
        assert len(plan.plan.join_nodes) == 0
        assert len(plan.order) == 4

    def test_greedy_order_is_callable_chain(self, registry, travel_query):
        from repro.sources.travel import alpha1_patterns, CONF_ATOM

        order = greedy_selectivity_order(
            travel_query, alpha1_patterns(), registry
        )
        assert order[0] == CONF_ATOM  # the only directly callable atom

    def test_exhaustive_chains_at_least_as_good_as_greedy(
        self, registry, travel_query
    ):
        greedy = wsms_optimize(travel_query, registry, exhaustive_chains=False)
        best = wsms_optimize(travel_query, registry, exhaustive_chains=True)
        assert best.cost <= greedy.cost + 1e-9

    def test_wsms_ignores_parallelism_opportunities(self, registry, travel_query):
        """The paper's optimizer beats the WSMS chain under ETM once
        the chain is charged the fetches needed for k answers: WSMS
        models neither chunking nor parallel joins."""
        from repro.optimizer.fetches import FetchContext, exhaustive_assignment

        wsms = wsms_optimize(travel_query, registry)
        etm = ExecutionTimeMetric()
        context = FetchContext(wsms.plan, etm, CacheSetting.ONE_CALL)
        charged = exhaustive_assignment(context, k=10)
        assert charged.feasible
        ours = Optimizer(
            registry, etm,
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        assert ours.cost <= charged.cost + 1e-9
        assert len(ours.plan.join_nodes) >= 1  # ours parallelizes

    def test_bottleneck_metric_value_is_max_work(self, registry, travel_query):
        plan = wsms_optimize(travel_query, registry)
        metric = BottleneckMetric()
        from repro.plans.annotate import annotate

        annotation = annotate(plan.plan, CacheSetting.NO_CACHE)
        assert plan.cost <= metric.cost(plan.plan, annotation) + 1e-9
