"""The bibliographic corpus generator and backend-parameterized registry.

:func:`repro.sources.biblio.generate_corpus` must scale the toy domain
without changing its contract: same row shapes, same planted ground
truth, deterministic in ``(n_papers, seed)``, values inside the
SQLite-exact type domain so every backend serves it identically.
"""

from __future__ import annotations

import pytest

from repro.services.sqlite import (
    FTS5SearchService,
    SQLiteExactService,
    fts5_available,
)
from repro.services.table import TableExactService, TableSearchService
from repro.sources.biblio import (
    _relevance_index,
    biblio_registry,
    biblio_registry_fts5,
    biblio_registry_sqlite,
    generate_corpus,
    planted_experts,
)


class TestGenerateCorpus:
    def test_deterministic_in_size_and_seed(self):
        assert generate_corpus(300, seed=5) == generate_corpus(300, seed=5)
        assert generate_corpus(300, seed=5) != generate_corpus(300, seed=6)

    def test_shapes_match_the_toy_corpus(self):
        papers, authorships, projects = generate_corpus(200, seed=0)
        assert len(papers) == 200
        assert all(len(row) == 5 for row in papers)
        assert all(len(row) == 2 for row in authorships)
        assert all(len(row) == 3 for row in projects)
        kinds = {
            type(value)
            for relation in (papers, authorships, projects)
            for row in relation
            for value in row
        }
        assert kinds <= {str, int, float}  # the SQLite-exact type domain
        # Paper ids are unique; every authorship references a paper.
        ids = {row[1] for row in papers}
        assert len(ids) == len(papers)
        assert {paper for paper, _ in authorships} <= ids

    def test_relevance_strictly_decreases_per_topic(self):
        papers, _, _ = generate_corpus(300, seed=2)
        by_topic: dict[str, list[float]] = {}
        for topic, _, _, _, relevance in papers:
            by_topic.setdefault(topic, []).append(relevance)
        for scores in by_topic.values():
            assert scores == sorted(scores, reverse=True)
            assert len(set(scores)) == len(scores)

    def test_planted_ground_truth_survives_scaling(self):
        papers, authorships, projects = generate_corpus(800, seed=1)
        experts = set(planted_experts())
        authored = {author for _, author in authorships}
        investigators = {author for author, _, _ in projects}
        assert experts <= authored
        assert experts <= investigators
        # Experts own the very top of each topic's ranking.
        score = _relevance_index(papers)
        for topic in {row[0] for row in papers}:
            best = max(
                (row for row in papers if row[0] == topic),
                key=lambda row: score((row[0], row[1])),
            )
            top_authors = {
                author for paper, author in authorships if paper == best[1]
            }
            assert top_authors & experts

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            generate_corpus(2)


class TestBackendSelection:
    def test_default_registry_is_in_memory_and_unchanged(self):
        registry = biblio_registry()
        assert isinstance(registry.service("pubsearch"), TableSearchService)
        assert isinstance(registry.service("authors"), TableExactService)
        assert registry.names == ("pubsearch", "authors", "projects")

    def test_sqlite_backend_services(self):
        registry = biblio_registry_sqlite()
        assert isinstance(registry.service("authors"), SQLiteExactService)
        assert isinstance(registry.service("projects"), SQLiteExactService)
        assert type(registry.service("pubsearch")).__name__ == (
            "SQLiteSearchService"
        )

    @pytest.mark.skipif(not fts5_available(), reason="sqlite3 lacks FTS5")
    def test_fts5_backend_services(self):
        registry = biblio_registry_fts5()
        assert isinstance(registry.service("pubsearch"), FTS5SearchService)
        assert isinstance(registry.service("authors"), SQLiteExactService)

    @pytest.mark.skipif(not fts5_available(), reason="sqlite3 lacks FTS5")
    def test_backends_share_the_content_epoch(self):
        # Same signatures + profiles → same epoch: the plan cache is
        # backend-neutral (plans depend on profiles, not storage).
        epochs = {
            biblio_registry().content_epoch(),
            biblio_registry_sqlite().content_epoch(),
            biblio_registry_fts5().content_epoch(),
        }
        assert len(epochs) == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown biblio backend"):
            biblio_registry(backend="parquet")

    def test_disk_backed_registry(self, tmp_path):
        corpus = generate_corpus(120, seed=4)
        registry = biblio_registry(
            backend="sqlite", corpus=corpus, path=tmp_path
        )
        assert (tmp_path / "pubsearch.db").exists()
        assert (tmp_path / "authors.db").exists()
        memory = biblio_registry(backend="memory", corpus=corpus)
        pattern = memory.signature("authors").pattern("io")
        paper = corpus[1][0][0]
        a = memory.service("authors").invoke(pattern, {0: paper})
        b = registry.service("authors").invoke(pattern, {0: paper})
        assert a.tuples == b.tuples
