"""Shared fixtures: registries, queries, and small synthetic schemas."""

from __future__ import annotations

import pytest

from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService
from repro.sources.travel import running_example_query, travel_registry
from repro.sources.world import build_world


@pytest.fixture(scope="session")
def world():
    """The calibrated travel world (expensive enough to share)."""
    return build_world()


@pytest.fixture()
def registry(world):
    """A fresh travel registry (per test: services hold remote-cache state)."""
    return travel_registry(world)


@pytest.fixture()
def travel_query():
    """The running-example query of Figure 3."""
    return running_example_query()


@pytest.fixture()
def tiny_registry():
    """A minimal two-service registry for unit tests.

    ``cities(Country, City)`` — exact, bulk, by country.
    ``spots(City, Spot, Score)`` — search, chunked by 2, by city.
    """
    registry = ServiceRegistry()
    registry.register(
        TableExactService(
            signature("cities", ["Country", "City"], ["io"]),
            exact_profile(erspi=3.0, response_time=1.0),
            [
                ("it", "Roma"),
                ("it", "Milano"),
                ("it", "Torino"),
                ("fr", "Paris"),
                ("fr", "Lyon"),
            ],
        )
    )
    registry.register(
        TableSearchService(
            signature("spots", ["City", "Spot", "Score"], ["ioo"]),
            search_profile(chunk_size=2, response_time=2.0),
            [
                ("Roma", "Colosseo", 10),
                ("Roma", "Pantheon", 9),
                ("Roma", "Trastevere", 7),
                ("Milano", "Duomo", 9),
                ("Milano", "Navigli", 6),
                ("Paris", "Louvre", 10),
                ("Paris", "Marais", 8),
                ("Paris", "Pantheon", 7),
            ],
            score=lambda row: float(row[2]),
        )
    )
    return registry


@pytest.fixture()
def tiny_query():
    """Italian cities and their best spots with a score filter."""
    country = Constant("it")
    city = Variable("City")
    spot = Variable("Spot")
    score = Variable("Score")
    return ConjunctiveQuery(
        name="tour",
        head=(city, spot),
        atoms=(
            Atom("cities", (country, city)),
            Atom("spots", (city, spot, score)),
        ),
        predicates=(Comparison(score, ">=", Constant(7), selectivity=0.8),),
    )
