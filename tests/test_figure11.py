"""Reproduction of Figure 11: calls per service and total times for
plans S, P, O under the three cache settings.

The call counts match the paper *exactly* (the synthetic world is
calibrated for this); the simulated times must reproduce the paper's
orderings (shape), not its absolute values.
"""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
    travel_registry,
)

#: The paper's Figure 11 call counts:
#: {setting: {plan: (weather, flight, hotel)}}
PAPER_CALLS = {
    CacheSetting.NO_CACHE: {"S": (71, 16, 284), "P": (71, 71, 71), "O": (71, 16, 16)},
    CacheSetting.ONE_CALL: {"S": (71, 16, 15), "P": (71, 71, 71), "O": (71, 16, 16)},
    CacheSetting.OPTIMAL: {"S": (54, 11, 10), "P": (54, 54, 54), "O": (54, 11, 11)},
}


@pytest.fixture(scope="module")
def figure11():
    """Execute the 3 plans × 3 cache settings once, collect results."""
    registry = travel_registry()
    query = running_example_query()
    builder = PlanBuilder(query, registry)
    plans = {
        "S": builder.build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
        ),
        "P": builder.build(
            alpha1_patterns(), poset_parallel(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
        "O": builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
    }
    outcomes = {}
    for setting in CacheSetting:
        for name, plan in plans.items():
            engine = ExecutionEngine(
                registry, cache_setting=setting, mode=ExecutionMode.PARALLEL
            )
            outcomes[(setting, name)] = engine.execute(
                plan, head=query.head, k=10
            )
    return outcomes


class TestCallCounts:
    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    @pytest.mark.parametrize("plan_name", ["S", "P", "O"])
    def test_calls_match_paper_exactly(self, figure11, setting, plan_name):
        stats = figure11[(setting, plan_name)].stats
        expected = PAPER_CALLS[setting][plan_name]
        actual = (
            stats.calls("weather"), stats.calls("flight"), stats.calls("hotel")
        )
        assert actual == expected

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    @pytest.mark.parametrize("plan_name", ["S", "P", "O"])
    def test_conf_called_once(self, figure11, setting, plan_name):
        assert figure11[(setting, plan_name)].stats.calls("conf") == 1


class TestTimeShape:
    """Orderings the paper's time chart exhibits."""

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_o_fastest_p_slowest(self, figure11, setting):
        elapsed = {
            name: figure11[(setting, name)].elapsed for name in ("S", "P", "O")
        }
        assert elapsed["O"] < elapsed["S"] < elapsed["P"]

    @pytest.mark.parametrize("plan_name", ["S", "P", "O"])
    def test_caching_never_slows_a_plan(self, figure11, plan_name):
        no = figure11[(CacheSetting.NO_CACHE, plan_name)].elapsed
        one = figure11[(CacheSetting.ONE_CALL, plan_name)].elapsed
        optimal = figure11[(CacheSetting.OPTIMAL, plan_name)].elapsed
        assert optimal <= one + 1e-9 <= no + 1e-9

    def test_one_call_cache_helps_s_substantially(self, figure11):
        no = figure11[(CacheSetting.NO_CACHE, "S")].elapsed
        one = figure11[(CacheSetting.ONE_CALL, "S")].elapsed
        assert one < no * 0.95

    def test_one_call_cache_does_not_help_o(self, figure11):
        """'No improvement can be observed for O between the no-cache
        and the one-call cache setting' (Section 6)."""
        no = figure11[(CacheSetting.NO_CACHE, "O")].elapsed
        one = figure11[(CacheSetting.ONE_CALL, "O")].elapsed
        assert one == pytest.approx(no)


class TestAnswers:
    def test_all_cells_produce_the_same_answers(self, figure11):
        reference = frozenset(figure11[(CacheSetting.NO_CACHE, "O")].answers(None))
        assert reference
        for key, outcome in figure11.items():
            assert frozenset(outcome.answers(None)) == reference, key

    def test_at_least_k_answers(self, figure11):
        assert len(figure11[(CacheSetting.NO_CACHE, "O")].rows) >= 10

    def test_redundant_hotel_calls_removed_by_construction(self, figure11):
        """'redundant calls (72%) on hotel are removed by construction
        of the plan' — O vs S in the no-cache setting."""
        s_hotel = figure11[(CacheSetting.NO_CACHE, "S")].stats.calls("hotel")
        o_hotel = figure11[(CacheSetting.NO_CACHE, "O")].stats.calls("hotel")
        assert 1 - o_hotel / s_hotel > 0.90  # 284 -> 16
