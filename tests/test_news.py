"""Tests for the news-management domain (Section 6)."""

import pytest

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.optimizer.optimizer import optimize_query
from repro.sources.news import (
    NEWS_DECAY,
    market_moving_news_query,
    news_registry,
)


@pytest.fixture(scope="module")
def registry():
    return news_registry()


class TestServices:
    def test_newssearch_has_decay(self, registry):
        profile = registry.profile("newssearch")
        assert profile.is_search
        assert profile.decay == NEWS_DECAY
        assert profile.max_fetches() == 4

    def test_quotes_is_functional(self, registry):
        from repro.model.schema import AccessPattern

        result = registry.service("quotes").invoke(
            AccessPattern("iio"), {0: "Acme", 1: "2008-03-03"}
        )
        assert len(result) == 1

    def test_profile_patterns(self, registry):
        codes = {p.code for p in registry.signature("profile").patterns}
        assert codes == {"ioo", "oio"}

    def test_sector_pattern_is_more_proliferative(self, registry):
        assert registry.profile("profile", "oio").erspi > registry.profile(
            "profile", "ioo"
        ).erspi


class TestQuery:
    def test_optimize_and_execute(self, registry):
        query = market_moving_news_query("merger", "tech", min_move=0)
        best = optimize_query(
            query, registry, ExecutionTimeMetric(), k=3,
            cache_setting=CacheSetting.ONE_CALL,
        )
        result = execute_plan(
            best.plan, registry, head=query.head,
            cache_setting=CacheSetting.ONE_CALL,
        )
        assert result.rows
        for company, _, _, change in result.answers(None):
            assert change >= 0

    def test_answers_restricted_to_sector(self, registry):
        query = market_moving_news_query("earnings", "energy", min_move=0)
        best = optimize_query(
            query, registry, ExecutionTimeMetric(), k=3
        )
        result = execute_plan(best.plan, registry, head=query.head)
        energy_companies = {
            row[0] for row in registry.service("profile").rows
            if row[1] == "energy"
        }
        for company, _, _, _ in result.answers(None):
            assert company in energy_companies

    def test_decay_caps_news_fetches(self, registry):
        query = market_moving_news_query("merger", "tech", min_move=-100)
        best = optimize_query(query, registry, ExecutionTimeMetric(), k=20)
        news_node = best.plan.service_node_for_atom(0)
        assert news_node.fetches <= 4

    def test_ranked_results_most_relevant_first(self, registry):
        from repro.model.schema import AccessPattern

        result = registry.service("newssearch").invoke(
            AccessPattern("ioooo"), {0: "merger"}
        )
        ids = [row[1] for row in result.tuples]
        assert ids == sorted(ids)  # article ids encode relevance order
