"""Tests for the programmatic experiment runners (repro.experiments)."""

import pytest

from repro.experiments import (
    PAPER_CALLS,
    run_figure7,
    run_figure8,
    run_figure11,
    run_multithreading,
    run_table1,
)
from repro.sources.travel import poset_optimal


@pytest.fixture(scope="module")
def grid():
    return run_figure11()


class TestTable1Runner:
    def test_four_estimates(self):
        estimates = run_table1()
        assert [e.service for e in estimates] == [
            "conf", "weather", "flight", "hotel"
        ]

    def test_paper_taus(self):
        taus = {e.service: e.average_response_time for e in run_table1()}
        assert taus == pytest.approx(
            {"conf": 1.2, "weather": 1.5, "flight": 9.7, "hotel": 4.9}
        )


class TestFigure7Runner:
    def test_19_costed_topologies_sorted(self):
        rows = run_figure7()
        assert len(rows) == 19
        costs = [row.cost for row in rows]
        assert costs == sorted(costs)

    def test_best_is_plan_o(self):
        rows = run_figure7()
        assert rows[0].poset.closure() == poset_optimal().closure()


class TestFigure8Runner:
    def test_figure8_values(self):
        result = run_figure8()
        assert result.fetches == {0: 3, 1: 4}
        assert result.annotation.output_size == pytest.approx(15.0)

    def test_render_contains_annotations(self):
        assert "t_in=1500" in run_figure8().render()


class TestFigure11Runner:
    def test_nine_cells(self, grid):
        assert len(grid.cells) == 9

    def test_all_calls_match_paper(self, grid):
        assert grid.all_calls_match_paper
        for (setting, plan), expected in PAPER_CALLS.items():
            assert grid.cell(setting, plan).calls == expected

    def test_time_shape(self, grid):
        assert grid.time_shape_holds()

    def test_render_mentions_paper_columns(self, grid):
        text = grid.render()
        assert "paper calls" in text
        assert "no-cache" in text
        assert len(text.splitlines()) == 10  # header + 9 cells


class TestMultithreadingRunner:
    def test_speedup_and_degradation(self):
        result = run_multithreading()
        assert result.speedup > 3
        assert result.ordered_hotel_calls == 15
        assert result.cache_degraded
        assert 15 < result.threaded_hotel_calls <= 284
