"""Differential and stress suite for parallel plan execution.

:class:`~repro.execution.parallel.ParallelExecutor` must be
**bit-identical** — rows, ranks, emission order, *and call counts* —
to ``ExecutionEngine(mode=PARALLEL)`` on the same plan, for every
cache setting and worker count: worker scheduling may reorder the
physical work but nothing observable (the determinism argument in
``docs/ARCHITECTURE.md``).  The cache half of the argument gets its
own stress test: a shared lock-guarded
:class:`~repro.execution.cache.ThreadSafeCache` hammered by concurrent
workers must never change answers or double-count remote calls.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cache import CacheSetting, OptimalCache, ThreadSafeCache
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.parallel import ParallelExecutor
from repro.plans.builder import PlanBuilder
from repro.services.registry import JoinMethod
from repro.sources.travel import (
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
    travel_registry,
)

from tests.test_property_streaming import _random_table_plan, _signature

POSETS = {
    "optimal": poset_optimal,
    "serial": poset_serial,
    "parallel": poset_parallel,
}


def _travel_plan(poset_name):
    query = running_example_query()
    registry = travel_registry()
    plan = PlanBuilder(query, registry).build(
        alpha1_patterns(), POSETS[poset_name]()
    )
    return query, plan


def _service_counters(stats):
    return {
        name: (s.calls, s.fetches, s.cache_hits, s.remote_cache_hits,
               s.tuples_fetched)
        for name, s in stats.per_service.items()
    }


class TestParallelExecutorMatchesEngine:
    def test_travel_plans_bit_identical_across_settings_and_workers(self):
        for poset_name in POSETS:
            query, plan = _travel_plan(poset_name)
            for setting in CacheSetting:
                serial = ExecutionEngine(
                    travel_registry(), cache_setting=setting,
                    mode=ExecutionMode.PARALLEL,
                ).execute(plan, query.head)
                for workers in (1, 4):
                    result = ParallelExecutor(
                        travel_registry(), cache_setting=setting,
                        workers=workers,
                    ).execute(plan, query.head)
                    assert _signature(result.rows) == _signature(serial.rows)
                    assert _service_counters(result.stats) == _service_counters(
                        serial.stats
                    )
                    assert result.stats.tuples_processed == (
                        serial.stats.tuples_processed
                    )
                    assert result.complete

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.sampled_from((JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_plans_bit_identical(self, lk, rk, method, workers):
        registry, query, plan = _random_table_plan(lk, rk, method)
        head = tuple(query.head)
        serial = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        result = ParallelExecutor(registry, workers=workers).execute(
            plan, head=head
        )
        assert _signature(result.rows) == _signature(serial.rows)
        assert _service_counters(result.stats) == _service_counters(
            serial.stats
        )

    def test_one_call_cache_forces_single_worker(self):
        executor = ParallelExecutor(
            travel_registry(), cache_setting=CacheSetting.ONE_CALL, workers=8
        )
        assert executor.effective_workers() == 1
        query, plan = _travel_plan("serial")
        result = executor.execute(plan, query.head)
        assert result.stats.parallel_workers == 1

    def test_wall_time_and_workers_are_recorded(self):
        query, plan = _travel_plan("optimal")
        result = ParallelExecutor(travel_registry(), workers=4).execute(
            plan, query.head
        )
        assert result.stats.parallel_workers == 4
        assert result.stats.wall_time > 0
        assert result.stats.elapsed > 0  # virtual critical path rides along
        assert "parallel: workers=4" in result.stats.summary()

    def test_virtual_elapsed_matches_engine_with_one_worker(self):
        query, plan = _travel_plan("optimal")
        serial = ExecutionEngine(
            travel_registry(), mode=ExecutionMode.PARALLEL
        ).execute(plan, query.head)
        result = ParallelExecutor(travel_registry(), workers=1).execute(
            plan, query.head
        )
        assert result.stats.elapsed == serial.stats.elapsed


class TestThreadSafeCacheStress:
    def test_concurrent_hits_never_change_answers_or_double_count(self):
        """Many workers resolving overlapping input settings against one
        shared cache: every distinct (key, page) is computed exactly
        once, and every worker observes the same value for it."""
        cache = ThreadSafeCache(OptimalCache())
        computed: dict[tuple, int] = {}
        computed_lock = threading.Lock()
        keys = [f"input-{i}" for i in range(8)]
        pages = 3

        def resolve(worker: int):
            observed = {}
            for repeat in range(4):
                for key in keys:
                    with cache.key_lock("svc", key):
                        for page in range(pages):
                            value = cache.lookup("svc", key, page)
                            if value is None:
                                with computed_lock:
                                    computed[(key, page)] = (
                                        computed.get((key, page), 0) + 1
                                    )
                                value = f"{key}/{page}"
                                cache.store("svc", key, page, value)
                            observed[(key, page)] = value
            return observed

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(resolve, range(16)))
        expected = {
            (key, page): f"{key}/{page}"
            for key in keys
            for page in range(pages)
        }
        assert all(observed == expected for observed in results)
        assert computed == {key: 1 for key in expected}  # never double-computed

    def test_key_lock_is_per_input_setting(self):
        cache = ThreadSafeCache(OptimalCache())
        lock_a = cache.key_lock("svc", "a")
        assert cache.key_lock("svc", "a") is lock_a
        assert cache.key_lock("svc", "b") is not lock_a
        assert cache.key_lock("other", "a") is not lock_a

    def test_wrapper_delegates_and_exposes_inner(self):
        inner = OptimalCache(capacity=2)
        cache = ThreadSafeCache(inner)
        cache.store("svc", "k", 0, "v0")
        assert cache.lookup("svc", "k", 0) == "v0"
        assert cache.inner is inner
        cache.store("svc", "k", 1, "v1")
        cache.store("svc", "k", 2, "v2")  # capacity bound still enforced
        assert len(inner) == 2
        assert inner.evictions == 1
        cache.clear()
        assert cache.lookup("svc", "k", 1) is None

    def test_shared_cache_across_parallel_executions(self):
        """A second run over the same warmed shared cache is all hits —
        and the answers do not change."""
        query, plan = _travel_plan("optimal")
        registry = travel_registry()
        shared = ThreadSafeCache(OptimalCache())
        executor = ParallelExecutor(registry, workers=4)
        first = executor.execute(
            plan, query.head, shared_cache=shared, reset_remote_caches=False
        )
        second = executor.execute(
            plan, query.head, shared_cache=shared, reset_remote_caches=False
        )
        assert _signature(second.rows) == _signature(first.rows)
        assert second.stats.total_calls == 0
        assert second.stats.total_cache_hits > 0
