"""Differential and stress suite for parallel plan execution.

:class:`~repro.execution.parallel.ParallelExecutor` must be
**bit-identical** — rows, ranks, emission order, *and call counts* —
to ``ExecutionEngine(mode=PARALLEL)`` on the same plan, for every
cache setting and worker count: worker scheduling may reorder the
physical work but nothing observable (the determinism argument in
``docs/ARCHITECTURE.md``).  The cache half of the argument gets its
own stress test: a shared lock-guarded
:class:`~repro.execution.cache.ThreadSafeCache` hammered by concurrent
workers must never change answers or double-count remote calls.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cache import CacheSetting, OptimalCache, ThreadSafeCache
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.parallel import ParallelExecutor
from repro.plans.builder import PlanBuilder
from repro.services.registry import JoinMethod
from repro.sources.travel import (
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
    running_example_query,
    travel_registry,
)

from repro.execution.resilience import (
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import Poset
from repro.services.profile import search_profile
from repro.services.table import TableSearchService
from repro.testing import FaultSchedule, wrap_registry_flaky

from tests.test_fault_injection import PLAN_SHAPES
from tests.test_property_streaming import _random_table_plan, _signature
from tests.test_resilience import _sig

POSETS = {
    "optimal": poset_optimal,
    "serial": poset_serial,
    "parallel": poset_parallel,
}


def _travel_plan(poset_name):
    query = running_example_query()
    registry = travel_registry()
    plan = PlanBuilder(query, registry).build(
        alpha1_patterns(), POSETS[poset_name]()
    )
    return query, plan


def _service_counters(stats):
    return {
        name: (s.calls, s.fetches, s.cache_hits, s.remote_cache_hits,
               s.tuples_fetched)
        for name, s in stats.per_service.items()
    }


class TestParallelExecutorMatchesEngine:
    def test_travel_plans_bit_identical_across_settings_and_workers(self):
        for poset_name in POSETS:
            query, plan = _travel_plan(poset_name)
            for setting in CacheSetting:
                serial = ExecutionEngine(
                    travel_registry(), cache_setting=setting,
                    mode=ExecutionMode.PARALLEL,
                ).execute(plan, query.head)
                for workers in (1, 4):
                    result = ParallelExecutor(
                        travel_registry(), cache_setting=setting,
                        workers=workers,
                    ).execute(plan, query.head)
                    assert _signature(result.rows) == _signature(serial.rows)
                    assert _service_counters(result.stats) == _service_counters(
                        serial.stats
                    )
                    assert result.stats.tuples_processed == (
                        serial.stats.tuples_processed
                    )
                    assert result.complete

    @given(
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.lists(st.integers(0, 2), min_size=1, max_size=6),
        st.sampled_from((JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN)),
        st.integers(1, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_plans_bit_identical(self, lk, rk, method, workers):
        registry, query, plan = _random_table_plan(lk, rk, method)
        head = tuple(query.head)
        serial = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=head
        )
        result = ParallelExecutor(registry, workers=workers).execute(
            plan, head=head
        )
        assert _signature(result.rows) == _signature(serial.rows)
        assert _service_counters(result.stats) == _service_counters(
            serial.stats
        )

    def test_one_call_cache_forces_single_worker(self):
        executor = ParallelExecutor(
            travel_registry(), cache_setting=CacheSetting.ONE_CALL, workers=8
        )
        assert executor.effective_workers() == 1
        query, plan = _travel_plan("serial")
        result = executor.execute(plan, query.head)
        assert result.stats.parallel_workers == 1

    def test_wall_time_and_workers_are_recorded(self):
        query, plan = _travel_plan("optimal")
        result = ParallelExecutor(travel_registry(), workers=4).execute(
            plan, query.head
        )
        assert result.stats.parallel_workers == 4
        assert result.stats.wall_time > 0
        assert result.stats.elapsed > 0  # virtual critical path rides along
        assert "parallel: workers=4" in result.stats.summary()

    def test_virtual_elapsed_matches_engine_with_one_worker(self):
        query, plan = _travel_plan("optimal")
        serial = ExecutionEngine(
            travel_registry(), mode=ExecutionMode.PARALLEL
        ).execute(plan, query.head)
        result = ParallelExecutor(travel_registry(), workers=1).execute(
            plan, query.head
        )
        assert result.stats.elapsed == serial.stats.elapsed


class TestThreadSafeCacheStress:
    def test_concurrent_hits_never_change_answers_or_double_count(self):
        """Many workers resolving overlapping input settings against one
        shared cache: every distinct (key, page) is computed exactly
        once, and every worker observes the same value for it."""
        cache = ThreadSafeCache(OptimalCache())
        computed: dict[tuple, int] = {}
        computed_lock = threading.Lock()
        keys = [f"input-{i}" for i in range(8)]
        pages = 3

        def resolve(worker: int):
            observed = {}
            for repeat in range(4):
                for key in keys:
                    with cache.key_lock("svc", key):
                        for page in range(pages):
                            value = cache.lookup("svc", key, page)
                            if value is None:
                                with computed_lock:
                                    computed[(key, page)] = (
                                        computed.get((key, page), 0) + 1
                                    )
                                value = f"{key}/{page}"
                                cache.store("svc", key, page, value)
                            observed[(key, page)] = value
            return observed

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(resolve, range(16)))
        expected = {
            (key, page): f"{key}/{page}"
            for key in keys
            for page in range(pages)
        }
        assert all(observed == expected for observed in results)
        assert computed == {key: 1 for key in expected}  # never double-computed

    def test_key_lock_is_per_input_setting(self):
        cache = ThreadSafeCache(OptimalCache())
        lock_a = cache.key_lock("svc", "a")
        assert cache.key_lock("svc", "a") is lock_a
        assert cache.key_lock("svc", "b") is not lock_a
        assert cache.key_lock("other", "a") is not lock_a

    def test_wrapper_delegates_and_exposes_inner(self):
        inner = OptimalCache(capacity=2)
        cache = ThreadSafeCache(inner)
        cache.store("svc", "k", 0, "v0")
        assert cache.lookup("svc", "k", 0) == "v0"
        assert cache.inner is inner
        cache.store("svc", "k", 1, "v1")
        cache.store("svc", "k", 2, "v2")  # capacity bound still enforced
        assert len(inner) == 2
        assert inner.evictions == 1
        cache.clear()
        assert cache.lookup("svc", "k", 1) is None

    def test_shared_cache_across_parallel_executions(self):
        """A second run over the same warmed shared cache is all hits —
        and the answers do not change."""
        query, plan = _travel_plan("optimal")
        registry = travel_registry()
        shared = ThreadSafeCache(OptimalCache())
        executor = ParallelExecutor(registry, workers=4)
        first = executor.execute(
            plan, query.head, shared_cache=shared, reset_remote_caches=False
        )
        second = executor.execute(
            plan, query.head, shared_cache=shared, reset_remote_caches=False
        )
        assert _signature(second.rows) == _signature(first.rows)
        assert second.stats.total_calls == 0
        assert second.stats.total_cache_hits > 0


class TestParallelResilience:
    """The resilience seam under real threads (ISSUE 8 satellite).

    Worker scheduling must not leak into the resilience contracts:
    retried fan-out matches the fault-free serial oracle, hedged
    duplicates never touch the shared-cache accounting, and demotions
    discovered concurrently all land in one certificate.
    """

    def _counters(self, stats):
        # Excludes busy/remote-side counters: backoff rides on virtual
        # time and a hedged duplicate may warm the remote's own cache.
        return {
            name: (s.calls, s.fetches, s.cache_hits, s.tuples_fetched)
            for name, s in stats.per_service.items()
        }

    @given(
        st.integers(0, 10**6),
        st.sampled_from(sorted(PLAN_SHAPES)),
        st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_retried_parallel_matches_fault_free_engine(
        self, seed, shape, workers
    ):
        oracle_registry, head, oracle_plan = PLAN_SHAPES[shape]()
        oracle = ExecutionEngine(
            oracle_registry, mode=ExecutionMode.PARALLEL
        ).execute(oracle_plan, head=head)
        registry, head, plan = PLAN_SHAPES[shape]()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=seed, fail_rate=0.25),
            attempt_aware=True,
        )
        result = ParallelExecutor(
            registry,
            workers=workers,
            resilience=ResilienceConfig(retry=RetryPolicy(attempts=40)),
        ).execute(plan, head=head)
        assert _sig(result.rows) == _sig(oracle.rows)
        assert self._counters(result.stats) == self._counters(oracle.stats)
        assert result.stats.retries == result.stats.wasted_fetches

    def _caching_pair_plan(self, side=9, chunk=2, fetches=5):
        """``_pair_plan`` over remote-caching services: a duplicated
        pull is answered by the remote's own cache at the fast repeat
        latency, so a hedge on a delayed page deterministically wins."""
        from repro.services.registry import ServiceRegistry

        registry = ServiceRegistry()
        for name, var in (("lefts", "L"), ("rights", "R")):
            registry.register(
                TableSearchService(
                    signature(name, ["Q", "K", var], ["ioo"]),
                    search_profile(chunk_size=chunk, response_time=1.0),
                    [("q", i % 3, i) for i in range(side)],
                    score=lambda row: float(-row[2]),
                    remote_caching=True,
                )
            )
        registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
        key, lv, rv = Variable("K"), Variable("L"), Variable("R")
        query = ConjunctiveQuery(
            name="hedgedpair",
            head=(key, lv, rv),
            atoms=(
                Atom("lefts", (Constant("q"), key, lv)),
                Atom("rights", (Constant("q"), key, rv)),
            ),
            predicates=(),
        )
        plan = PlanBuilder(query, registry).build(
            (
                registry.signature("lefts").pattern("ioo"),
                registry.signature("rights").pattern("ioo"),
            ),
            Poset(n=2),
            fetches={0: fetches, 1: fetches},
        )
        return registry, tuple(query.head), plan

    def test_hedged_parallel_is_bit_identical_to_unhedged(self):
        """Every page delayed past the hedge threshold: the duplicates
        win on the remote's fast repeat latency, yet rows and the
        shared-cache accounting never move."""
        runs = {}
        for hedged in (False, True):
            registry, head, plan = self._caching_pair_plan()
            wrap_registry_flaky(
                registry, FaultSchedule(seed=13, delay_rate=1.0)
            )
            resilience = (
                ResilienceConfig(hedge=HedgePolicy(threshold=4.0))
                if hedged
                else None
            )
            runs[hedged] = ParallelExecutor(
                registry, workers=4, resilience=resilience
            ).execute(plan, head=head)
        plain, hedged = runs[False], runs[True]
        assert _sig(hedged.rows) == _sig(plain.rows)
        assert self._counters(hedged.stats) == self._counters(plain.stats)
        assert hedged.stats.hedged_pulls > 0
        assert hedged.stats.hedged_wins > 0
        # Discarded duplicates are traced as wasted work, and winning
        # on the fast repeat latency shortens the virtual critical path.
        assert hedged.stats.wasted_fetches >= hedged.stats.hedged_wins
        assert hedged.stats.elapsed < plain.stats.elapsed

    def test_concurrent_demotions_land_in_one_certificate(self):
        registry, head, plan = PLAN_SHAPES["pair"]()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=21, fail_rate=1.0),
            attempt_aware=True,
        )
        result = ParallelExecutor(
            registry,
            workers=4,
            resilience=ResilienceConfig(
                retry=RetryPolicy(attempts=2), partial_results=True
            ),
        ).execute(plan, head=head)
        assert result.rows == []
        certificate = result.certificate
        assert certificate is not None and certificate.is_partial
        assert result.stats.demoted_blocks == len(certificate.dropped)
        assert set(certificate.dropped_services) <= {"lefts", "rights"}
