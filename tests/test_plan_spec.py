"""Tests for serializable plan specifications."""

import pytest

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.annotate import annotate
from repro.plans.dag import PlanError
from repro.plans.spec import PlanSpec
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
)


@pytest.fixture()
def spec():
    return PlanSpec.from_choices(
        alpha1_patterns(), poset_optimal(),
        fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
    )


class TestRoundTrip:
    def test_json_round_trip(self, spec):
        assert PlanSpec.from_json(spec.to_json()) == spec

    def test_json_is_deterministic(self, spec):
        assert spec.to_json() == spec.to_json()

    def test_build_reconstructs_equivalent_plan(self, spec, registry, travel_query):
        plan = spec.build(travel_query, registry)
        plan.validate()
        assert plan.service_node_for_atom(FLIGHT_ATOM).fetches == 3
        assert plan.service_node_for_atom(HOTEL_ATOM).fetches == 4
        annotation = annotate(plan, CacheSetting.ONE_CALL)
        assert annotation.output_size == pytest.approx(15.0)

    def test_rebuilt_plan_executes_identically(self, spec, registry, travel_query):
        plan = spec.build(travel_query, registry)
        direct = execute_plan(plan, registry, head=travel_query.head)
        round_tripped = PlanSpec.from_json(spec.to_json()).build(
            travel_query, registry
        )
        again = execute_plan(round_tripped, registry, head=travel_query.head)
        assert direct.answers(None) == again.answers(None)


class TestFromOptimized:
    def test_captures_optimizer_decisions(self, registry, travel_query):
        best = Optimizer(
            registry,
            ExecutionTimeMetric(),
            OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        spec = PlanSpec.from_optimized(best)
        rebuilt = spec.build(travel_query, registry)
        annotation = annotate(rebuilt, CacheSetting.ONE_CALL)
        cost = ExecutionTimeMetric().cost(rebuilt, annotation)
        assert cost == pytest.approx(best.cost)


class TestErrors:
    def test_arity_mismatch_rejected(self, spec, registry, tiny_query):
        with pytest.raises(PlanError):
            spec.build(tiny_query, registry)

    def test_unknown_pattern_rejected(self, registry, travel_query):
        from repro.model.schema import SchemaError

        bad = PlanSpec(
            pattern_codes=("iiiiooo", "oiiiio", "xxxxx", "ioi"),
            precedence_pairs=(),
            fetches=(),
        )
        with pytest.raises(SchemaError):
            bad.build(travel_query, registry)
