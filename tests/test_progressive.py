"""Tests for progressive execution ("ask for more", Section 2.2)."""

import pytest

from repro.execution.progressive import ProgressiveExecutor
from repro.plans.builder import PlanBuilder, chain_poset
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
)


@pytest.fixture()
def executor(registry, travel_query):
    plan = PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_optimal(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
    )
    return ProgressiveExecutor(
        registry=registry, plan=plan, head=tuple(travel_query.head)
    )


class TestRun:
    def test_reaches_k(self, executor):
        result = executor.run(k=10)
        assert len(result.rows) >= 10

    def test_single_round_when_enough(self, executor):
        executor.run(k=1)
        assert len(executor.rounds) == 1

    def test_fetches_grow_monotonically(self, executor):
        executor.run(k=100)
        vectors = [r.fetches for r in executor.rounds]
        for earlier, later in zip(vectors, vectors[1:]):
            for atom_index in earlier:
                assert later[atom_index] >= earlier[atom_index]

    def test_continuation_reuses_cache(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(travel_query.head)
        )
        first = executor.run(k=5)
        before = first.stats.calls("weather")
        more = executor.more(20)
        # The continuation round answers all previously-issued calls
        # from the shared optimal cache: weather needs no new calls.
        assert more.stats.calls("weather") <= before
        assert more.stats.total_cache_hits > 0
        assert len(more.rows) >= len(first.rows)

    def test_more_is_incremental(self, executor):
        first = executor.run(k=3)
        extended = executor.more(10)
        assert len(extended.rows) >= min(13, len(first.rows) + 1)


class TestCaps:
    def test_decay_caps_stop_growth(self, tiny_query):
        from repro.model.schema import signature
        from repro.services.profile import exact_profile, search_profile
        from repro.services.registry import ServiceRegistry
        from repro.services.table import TableExactService, TableSearchService

        registry = ServiceRegistry()
        registry.register(
            TableExactService(
                signature("cities", ["Country", "City"], ["io"]),
                exact_profile(erspi=1.0, response_time=1.0),
                [("it", "Roma")],
            )
        )
        registry.register(
            TableSearchService(
                signature("spots", ["City", "Spot", "Score"], ["ioo"]),
                search_profile(chunk_size=2, response_time=1.0, decay=4),
                [("Roma", f"s{i}", 10) for i in range(20)],
                score=lambda row: float(row[2]),
            )
        )
        plan = PlanBuilder(tiny_query, registry).build(
            (
                registry.signature("cities").pattern("io"),
                registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(tiny_query.head)
        )
        result = executor.run(k=50)
        # decay 4 caps the factor at 2, so at most 4 tuples ever.
        assert len(result.rows) <= 4
        final = executor.rounds[-1].fetches
        assert final[1] == 2
