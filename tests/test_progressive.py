"""Tests for progressive execution ("ask for more", Section 2.2)."""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.progressive import ProgressiveExecutor
from repro.execution.results import compose_ranking
from repro.plans.builder import PlanBuilder, chain_poset
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
)


@pytest.fixture()
def executor(registry, travel_query):
    plan = PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_optimal(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
    )
    return ProgressiveExecutor(
        registry=registry, plan=plan, head=tuple(travel_query.head)
    )


class TestRun:
    def test_reaches_k(self, executor):
        result = executor.run(k=10)
        assert len(result.rows) >= 10

    def test_single_round_when_enough(self, executor):
        executor.run(k=1)
        assert len(executor.rounds) == 1

    def test_fetches_grow_monotonically(self, executor):
        executor.run(k=100)
        vectors = [r.fetches for r in executor.rounds]
        for earlier, later in zip(vectors, vectors[1:]):
            for atom_index in earlier:
                assert later[atom_index] >= earlier[atom_index]

    def test_continuation_reuses_cache(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(travel_query.head)
        )
        first = executor.run(k=5)
        before = first.stats.calls("weather")
        more = executor.more(20)
        # The continuation round answers all previously-issued calls
        # from the shared optimal cache: weather needs no new calls.
        assert more.stats.calls("weather") <= before
        assert more.stats.total_cache_hits > 0
        assert len(more.rows) >= len(first.rows)

    def test_more_is_incremental(self, executor):
        first = executor.run(k=3)
        extended = executor.more(10)
        assert len(extended.rows) >= min(13, len(first.rows) + 1)


class TestStreamedResume:
    """STREAMED continuations resume the suspended JoinStream: asking
    for more walks further into the already-materialized candidate
    plane, so no service call issued in an earlier round is ever
    repeated — under *any* logical-cache setting."""

    def _executor(self, registry, travel_query, setting, lazy=True):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 2, HOTEL_ATOM: 2},
        )
        return ProgressiveExecutor(
            registry=registry,
            plan=plan,
            head=tuple(travel_query.head),
            mode=ExecutionMode.STREAMED,
            cache_setting=setting,
            lazy_streaming=lazy,
        )

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_resumed_stream_issues_no_service_calls(
        self, registry, travel_query, setting
    ):
        """With eager materialization (``lazy_streaming=False``) the
        suspended plane is fully fetched up front, so a resume is pure
        walk: zero service interaction under every cache setting.
        (Lazy resumes may pull budgeted pages; their honest accounting
        is pinned by :class:`TestLazyStreamedResume` and
        ``tests/test_lazy_multifeed.py``.)"""
        executor = self._executor(registry, travel_query, setting, lazy=False)
        first = executor.run(k=2)
        assert first.stream is not None
        assert len(first.rows) == 2
        more = executor.more(3)
        latest = executor.rounds[-1]
        assert latest.resumed
        assert latest.new_calls == 0
        # No service interaction at all: the resumed round issues no
        # call, no fetch, and not even a logical-cache lookup — the
        # counters stay at zero under every cache setting.
        assert more.stats.total_calls == 0
        assert more.stats.total_fetches == 0
        assert more.stats.total_cache_hits == 0
        assert len(more.rows) == 5
        # The resumed stream shares the suspended walk's bookkeeping.
        assert more.stats.streamed_cells_visited == first.stream.cells_visited
        assert (
            more.stats.streamed_cells_visited
            + more.stats.early_exit_cells_skipped
            == first.stream.plane_cells
        )

    def test_resumed_rows_match_full_scan_oracle(self, registry, travel_query):
        executor = self._executor(registry, travel_query, CacheSetting.OPTIMAL)
        executor.run(k=2)
        more = executor.more(3)
        oracle_plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 2, HOTEL_ATOM: 2},
        )
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            oracle_plan, head=tuple(travel_query.head)
        )
        expected = compose_ranking(oracle.rows, 5)
        assert [dict(r.bindings) for r in more.rows] == [
            dict(r.bindings) for r in expected
        ]
        assert [r.rank_key() for r in more.rows] == [
            r.rank_key() for r in expected
        ]

    def test_free_resumed_rounds_do_not_consume_growth_budget(
        self, registry, travel_query
    ):
        """max_rounds bounds executing rounds only: any number of free
        stream-resume rounds must leave fetch growth available."""
        executor = self._executor(registry, travel_query, CacheSetting.OPTIMAL)
        executor.run(k=1)
        for _ in range(executor.max_rounds + 2):
            executor.more(1)  # all served by the suspended stream
        assert len(executor.rounds) > executor.max_rounds
        assert all(r.resumed for r in executor.rounds[1:])
        fetches_before = executor.fetch_vector()
        executor.run(k=10_000)  # beyond the plane: must grow fetches
        fetches_after = executor.fetch_vector()
        assert any(
            fetches_after[index] > fetches_before[index]
            for index in fetches_before
        )

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_exhausted_stream_falls_back_to_fetch_growth(
        self, registry, travel_query, setting
    ):
        executor = self._executor(registry, travel_query, setting)
        first = executor.run(k=2)
        produced = first.stream.top(None)
        huge = len(produced) + 1000
        result = executor.run(k=huge)
        grown = [r for r in executor.rounds[1:] if not r.resumed]
        assert grown, "growth rounds expected once the stream exhausts"
        assert len(result.rows) > len(first.rows)


class TestLazyStreamedResume:
    """Progressive + lazy interaction: stream-resume rounds over
    *lazily fetched* inputs stay zero-service-call whenever the walk
    stays within already-fetched pages — under every CacheSetting —
    and when the grown demand does pull budgeted pages, the fetches
    are recorded on the resumed round, never on an earlier one."""

    @staticmethod
    def _single_feed_executor(setting, side, chunk, fetches, lazy=True):
        from repro.model.schema import signature
        from repro.services.profile import search_profile
        from repro.services.registry import JoinMethod, ServiceRegistry
        from repro.services.table import TableSearchService
        from repro.model.atoms import Atom
        from repro.model.query import ConjunctiveQuery
        from repro.model.terms import Constant, Variable
        from repro.plans.builder import Poset

        registry = ServiceRegistry()
        for name, var in (("lefts", "L"), ("rights", "R")):
            registry.register(
                TableSearchService(
                    signature(name, ["Q", "K", var], ["ioo"]),
                    search_profile(chunk_size=chunk, response_time=1.0),
                    [("q", 0, i) for i in range(side)],
                    score=lambda row: float(-row[2]),
                )
            )
        registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
        key, lv, rv = Variable("K"), Variable("L"), Variable("R")
        query = ConjunctiveQuery(
            name="lazyprog",
            head=(key, lv, rv),
            atoms=(
                Atom("lefts", (Constant("q"), key, lv)),
                Atom("rights", (Constant("q"), key, rv)),
            ),
            predicates=(),
        )
        plan = PlanBuilder(query, registry).build(
            (
                registry.signature("lefts").pattern("ioo"),
                registry.signature("rights").pattern("ioo"),
            ),
            Poset(n=2),
            fetches={0: fetches, 1: fetches},
        )
        executor = ProgressiveExecutor(
            registry=registry,
            plan=plan,
            head=tuple(query.head),
            mode=ExecutionMode.STREAMED,
            cache_setting=setting,
            lazy_streaming=lazy,
        )
        return registry, query, plan, executor

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_resume_within_fetched_pages_is_zero_service_call(self, setting):
        """The lazily fetched page already covers the grown k: the
        resumed round must issue no call, no fetch, and no cache
        lookup, under every cache setting."""
        registry, query, plan, executor = self._single_feed_executor(
            setting, side=8, chunk=16, fetches=1
        )
        first = executor.run(k=1)
        assert first.stream is not None
        assert first.stats.lazy_tuples_fetched == 16  # one page per side
        more = executor.more(3)
        latest = executor.rounds[-1]
        assert latest.resumed
        assert latest.new_calls == 0
        assert more.stats.total_calls == 0
        assert more.stats.total_fetches == 0
        assert more.stats.total_cache_hits == 0
        assert more.stats.lazy_tuples_fetched == 0
        assert len(more.rows) == 4
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=tuple(query.head)
        )
        expected = compose_ranking(oracle.rows, 4)
        assert [dict(r.bindings) for r in more.rows] == [
            dict(r.bindings) for r in expected
        ]
        assert [r.rank_key() for r in more.rows] == [
            r.rank_key() for r in expected
        ]

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_budgeted_resume_fetches_are_recorded_honestly(self, setting):
        """A resume that outgrows the fetched pages pulls more budgeted
        pages: still a resumed round (no plan re-execution), with the
        remote work on *its* counters and the first round's frozen."""
        registry, query, plan, executor = self._single_feed_executor(
            setting, side=20, chunk=2, fetches=10
        )
        first = executor.run(k=1)
        first_fetches = first.stats.total_fetches
        assert first_fetches == 2  # one page per side
        more = executor.more(7)  # k=8 needs rows beyond page 0
        latest = executor.rounds[-1]
        assert latest.resumed
        assert latest.new_calls > 0
        assert more.stats.total_fetches > 0
        assert more.stats.lazy_tuples_fetched > 0
        # Remote latency makes the resumed round's virtual time real.
        assert latest.elapsed > 0.0
        assert more.elapsed == latest.elapsed
        # The savings snapshot shrinks to what is still unissued.
        assert more.stats.lazy_calls_saved < first.stats.lazy_calls_saved
        # The stale-counter regression: round 1's stats stay frozen.
        assert first.stats.total_fetches == first_fetches
        assert len(more.rows) == 8
        oracle = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL).execute(
            plan, head=tuple(query.head)
        )
        expected = compose_ranking(oracle.rows, 8)
        assert [r.rank_key() for r in more.rows] == [
            r.rank_key() for r in expected
        ]
        # Resumed rounds never count against the execution budget.
        assert executor._executed_rounds() == 1

    def test_lazy_resume_composes_with_shared_cache_on_reexecution(self):
        """Pages pulled by a resumed stream land in the shared logical
        cache: a later fetch-growth re-execution finds them for free."""
        registry, query, plan, executor = self._single_feed_executor(
            CacheSetting.OPTIMAL, side=6, chunk=2, fetches=2
        )
        executor.run(k=1)
        huge = 100  # beyond the 36-cell plane: must grow fetches
        result = executor.run(k=huge)
        grown = [r for r in executor.rounds[1:] if not r.resumed]
        assert grown, "growth rounds expected once the stream exhausts"
        assert result.stats.total_cache_hits > 0
        assert len(result.rows) == 36


class TestAccountingRegressions:
    """Resumed-round accounting: the bug-batch regressions."""

    def test_resumed_round_reports_lazy_calls_saved_as_a_delta(self):
        """Regression: a resumed round copied the stream's *cumulative*
        ``lazy_pages_saved`` into its own ``lazy_calls_saved``, double
        counting every earlier round's savings.  Fixed, the resumed
        round reports the delta its own pulls caused (negative when it
        fetched pages an earlier round counted as saved), and the
        per-round values sum to the stream's true current total."""
        _, _, _, executor = TestLazyStreamedResume._single_feed_executor(
            CacheSetting.OPTIMAL, side=20, chunk=2, fetches=10
        )
        first = executor.run(k=1)
        assert first.stats.lazy_calls_saved > 0
        more = executor.more(7)  # outgrows page 0: pulls budgeted pages
        latest = executor.rounds[-1]
        assert latest.resumed
        assert more.stats.total_fetches > 0
        assert more.stats.lazy_calls_saved < 0
        assert more.stream is not None
        assert (
            sum(r.stats.lazy_calls_saved for r in executor.rounds)
            == more.stream.lazy_pages_saved
        )

    def test_resume_served_round_seeds_the_exhaustion_baseline(self):
        """Regression: when the first round of a ``run`` was served by
        a stream resume, ``baseline_processed`` stayed None, so the
        first growth round could never trigger the exhaustion break
        and every continuation past the data burned one extra
        re-execution."""
        _, _, _, executor = TestLazyStreamedResume._single_feed_executor(
            CacheSetting.OPTIMAL, side=4, chunk=2, fetches=2
        )
        executor.run(k=2)
        assert executor._executed_rounds() == 1
        result = executor.run(k=100)  # far beyond the 16-answer plane
        assert executor.rounds[1].resumed  # served by resume first
        assert len(result.rows) == 16
        # Exactly one growth re-execution: the resumed round seeded the
        # baseline, so the first growth round (which demands the same
        # tuples and finds no new answers) detects exhaustion itself.
        assert executor._executed_rounds() == 2


class TestCaps:
    def test_decay_caps_stop_growth(self, tiny_query):
        from repro.model.schema import signature
        from repro.services.profile import exact_profile, search_profile
        from repro.services.registry import ServiceRegistry
        from repro.services.table import TableExactService, TableSearchService

        registry = ServiceRegistry()
        registry.register(
            TableExactService(
                signature("cities", ["Country", "City"], ["io"]),
                exact_profile(erspi=1.0, response_time=1.0),
                [("it", "Roma")],
            )
        )
        registry.register(
            TableSearchService(
                signature("spots", ["City", "Spot", "Score"], ["ioo"]),
                search_profile(chunk_size=2, response_time=1.0, decay=4),
                [("Roma", f"s{i}", 10) for i in range(20)],
                score=lambda row: float(row[2]),
            )
        )
        plan = PlanBuilder(tiny_query, registry).build(
            (
                registry.signature("cities").pattern("io"),
                registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        executor = ProgressiveExecutor(
            registry=registry, plan=plan, head=tuple(tiny_query.head)
        )
        result = executor.run(k=50)
        # decay 4 caps the factor at 2, so at most 4 tuples ever.
        assert len(result.rows) <= 4
        final = executor.rounds[-1].fetches
        assert final[1] == 2
