"""Calibration tests for the synthetic travel world (Section 6 arithmetic)."""

import pytest

from repro.sources.world import (
    HOT_CITY_CONFS,
    HOT_CITY_FLIGHTS,
    MILD_CITIES,
    build_world,
    city_dates,
    city_temperature,
    expected_plan_s_flight_tuples,
)


@pytest.fixture(scope="module")
def calibrated_world():
    return build_world()


class TestConferenceCalibration:
    def test_71_db_tuples(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        assert len(db) == 71

    def test_54_distinct_cities(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        assert len({r[4] for r in db}) == 54

    def test_16_hot_tuples_over_11_cities(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        hot = [r for r in db if r[4] in HOT_CITY_CONFS]
        assert len(hot) == 16
        assert len({r[4] for r in hot}) == 11

    def test_colocated_events_share_dates(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        per_city = {}
        for row in db:
            per_city.setdefault(row[4], set()).add((row[2], row[3]))
        assert all(len(dates) == 1 for dates in per_city.values())
        # Hence exactly 54 distinct (city, dates) combinations: the
        # optimal cache reduces weather calls from 71 to 54.
        assert len({(r[4], r[2], r[3]) for r in db}) == 54

    def test_no_consecutive_duplicate_cities(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        cities = [r[4] for r in db]
        assert all(a != b for a, b in zip(cities, cities[1:]))

    def test_db_rows_inside_window(self, calibrated_world):
        db = [r for r in calibrated_world.conf_rows if r[0] == "DB"]
        assert all("2008-04-01" <= r[2] and r[3] <= "2008-09-28" for r in db)


class TestWeatherCalibration:
    def test_hot_iff_temperature_at_least_28(self, calibrated_world):
        for city, temperature, _ in calibrated_world.weather_rows:
            if city in HOT_CITY_CONFS:
                assert temperature >= 28
            else:
                assert temperature < 28

    def test_city_temperature_helper_agrees(self):
        assert city_temperature("Cancun") >= 28
        assert city_temperature("London") < 28

    def test_one_weather_row_per_city(self, calibrated_world):
        cities = [row[0] for row in calibrated_world.weather_rows]
        assert len(cities) == len(set(cities)) == 54


class TestFlightCalibration:
    def test_mombasa_has_no_flights(self, calibrated_world):
        assert not any(r[1] == "Mombasa" for r in calibrated_world.flight_rows)

    def test_flight_counts_per_hot_city(self, calibrated_world):
        for city, expected in HOT_CITY_FLIGHTS.items():
            actual = sum(1 for r in calibrated_world.flight_rows if r[1] == city)
            assert actual == expected, city

    def test_284_tuples_flow_in_plan_s(self):
        # Sum over the 16 weather-passing conf tuples of the flights to
        # their city: the hotel call count of plan S without caching.
        assert expected_plan_s_flight_tuples() == 284

    def test_flights_match_conference_dates(self, calibrated_world):
        for _, city, out_date, ret_date, _, _, _ in calibrated_world.flight_rows:
            assert (out_date, ret_date) == city_dates(city)


class TestHotelCalibration:
    def test_five_luxury_hotels_everywhere(self, calibrated_world):
        luxury = {}
        for row in calibrated_world.hotel_rows:
            if row[2] == "luxury":
                luxury[row[1]] = luxury.get(row[1], 0) + 1
        assert set(luxury.values()) == {5}
        assert len(luxury) == 54

    def test_standard_hotels_exist(self, calibrated_world):
        categories = {row[2] for row in calibrated_world.hotel_rows}
        assert categories == {"luxury", "standard"}

    def test_budget_answers_exist(self, calibrated_world):
        # Enough flight+hotel pairs under 2000 for k=10 answers.
        flights = {}
        for row in calibrated_world.flight_rows:
            flights.setdefault(row[1], []).append(row[6])
        cheap_pairs = 0
        for row in calibrated_world.hotel_rows:
            if row[2] != "luxury" or row[1] not in flights:
                continue
            cheap_pairs += sum(
                1 for price in flights[row[1]] if price + row[5] < 2000
            )
        assert cheap_pairs >= 10


class TestDeterminism:
    def test_build_world_is_reproducible(self, calibrated_world):
        again = build_world()
        assert again.conf_rows == calibrated_world.conf_rows
        assert again.flight_rows == calibrated_world.flight_rows
        assert again.hotel_rows == calibrated_world.hotel_rows
        assert again.weather_rows == calibrated_world.weather_rows

    def test_city_lists_disjoint_and_sized(self, calibrated_world):
        assert len(calibrated_world.hot_cities) == 11
        assert len(calibrated_world.mild_cities) == len(MILD_CITIES)
        assert not set(calibrated_world.hot_cities) & set(
            calibrated_world.mild_cities
        )
