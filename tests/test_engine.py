"""Unit and integration tests for the execution engine."""

import pytest

from repro.execution.cache import CacheSetting
from repro.execution.engine import (
    ExecutionEngine,
    ExecutionError,
    ExecutionMode,
    execute_plan,
)
from repro.model.terms import Variable
from repro.plans.builder import PlanBuilder, chain_poset
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
)


@pytest.fixture()
def tiny_plan(tiny_registry, tiny_query):
    return PlanBuilder(tiny_query, tiny_registry).build(
        (
            tiny_registry.signature("cities").pattern("io"),
            tiny_registry.signature("spots").pattern("ioo"),
        ),
        chain_poset(2, [0, 1]),
        fetches={1: 2},
    )


class TestTinyExecution:
    def test_answers_correct(self, tiny_registry, tiny_query, tiny_plan):
        result = execute_plan(tiny_plan, tiny_registry, head=tiny_query.head)
        answers = set(result.answers())
        # Italian cities with spots scoring >= 7, within 2 chunks of 2.
        assert answers == {
            ("Roma", "Colosseo"), ("Roma", "Pantheon"), ("Roma", "Trastevere"),
            ("Milano", "Duomo"),
        }

    def test_pipe_join_passes_parameters(self, tiny_registry, tiny_plan):
        result = execute_plan(tiny_plan, tiny_registry)
        stats = result.stats
        assert stats.calls("cities") == 1
        assert stats.calls("spots") == 3  # Roma, Milano, Torino

    def test_fetch_stops_when_exhausted(self, tiny_registry, tiny_plan):
        result = execute_plan(tiny_plan, tiny_registry)
        # Milano has 2 spots (one chunk), Torino none: fewer fetches
        # than calls * F.
        assert result.stats.service("spots").fetches == 4  # 2 + 1 + 1

    def test_ranking_order(self, tiny_registry, tiny_query, tiny_plan):
        result = execute_plan(tiny_plan, tiny_registry, head=tiny_query.head)
        spots_in_order = [t[1] for t in result.answers() if t[0] == "Roma"]
        assert spots_in_order == ["Colosseo", "Pantheon", "Trastevere"]

    def test_elapsed_sequential_vs_parallel(self, tiny_registry, tiny_plan):
        seq = execute_plan(
            tiny_plan, tiny_registry, mode=ExecutionMode.SEQUENTIAL
        )
        par = execute_plan(tiny_plan, tiny_registry, mode=ExecutionMode.PARALLEL)
        # The plan is a chain: both modes should coincide.
        assert seq.elapsed == pytest.approx(par.elapsed)
        assert seq.elapsed == pytest.approx(1.0 + 4 * 2.0)


class TestCacheSettings:
    def test_one_call_cache_dedupes_consecutive(self, tiny_registry, tiny_query):
        # Feed spots with a duplicated city by querying all countries
        # through two atoms is overkill; instead verify on the travel
        # plans below.  Here: optimal cache never repeats.
        plan = PlanBuilder(tiny_query, tiny_registry).build(
            (
                tiny_registry.signature("cities").pattern("io"),
                tiny_registry.signature("spots").pattern("ioo"),
            ),
            chain_poset(2, [0, 1]),
        )
        result = execute_plan(
            plan, tiny_registry, cache_setting=CacheSetting.OPTIMAL
        )
        assert result.stats.calls("spots") == 3


class TestTravelPlans:
    def test_all_three_plans_agree_on_answers(self, registry, travel_query):
        builder = PlanBuilder(travel_query, registry)
        fetches = {FLIGHT_ATOM: 1, HOTEL_ATOM: 1}
        results = {}
        for name, poset in (
            ("S", poset_serial()), ("P", poset_parallel()), ("O", poset_optimal())
        ):
            plan = builder.build(alpha1_patterns(), poset, fetches=fetches)
            outcome = execute_plan(plan, registry, head=travel_query.head)
            results[name] = frozenset(outcome.answers())
        assert results["S"] == results["P"] == results["O"]
        assert len(results["O"]) > 0

    def test_answers_satisfy_predicates(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        result = execute_plan(plan, registry, head=travel_query.head)
        head_index = {v.name: i for i, v in enumerate(travel_query.head)}
        for answer in result.answers():
            assert answer[head_index["FPrice"]] + answer[head_index["HPrice"]] < 2000

    def test_answers_are_in_hot_cities_with_flights(self, registry, travel_query, world):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        result = execute_plan(plan, registry, head=travel_query.head)
        city_index = [v.name for v in travel_query.head].index("City")
        cities = {answer[city_index] for answer in result.answers()}
        assert cities <= set(world.hot_cities)
        assert "Mombasa" not in cities  # no flights there

    def test_multithreaded_mode_changes_timing_not_answers(
        self, registry, travel_query
    ):
        builder = PlanBuilder(travel_query, registry)
        plan = builder.build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        parallel = execute_plan(
            plan, registry, head=travel_query.head, mode=ExecutionMode.PARALLEL
        )
        threaded = execute_plan(
            plan, registry, head=travel_query.head,
            mode=ExecutionMode.MULTITHREADED,
        )
        assert frozenset(parallel.answers()) == frozenset(threaded.answers())
        assert threaded.elapsed < parallel.elapsed


class TestErrors:
    def test_unbound_input_variable(self, tiny_registry, tiny_query):
        from repro.plans.dag import QueryPlan
        from repro.plans.nodes import InputNode, OutputNode, ServiceNode

        plan = QueryPlan()
        start = plan.add_node(InputNode())
        node = ServiceNode(
            atom_index=1,
            atom=tiny_query.atoms[1],
            pattern=tiny_registry.signature("spots").pattern("ioo"),
            profile=tiny_registry.profile("spots"),
        )
        plan.add_node(node)
        end = plan.add_node(OutputNode())
        plan.add_arc(start, node)
        plan.add_arc(node, end)
        engine = ExecutionEngine(tiny_registry)
        with pytest.raises(ExecutionError):
            engine.execute(plan)
