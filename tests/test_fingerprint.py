"""Content fingerprints: profiles, registry epochs, query normalization.

The serving layer's invalidation story rests on three stability
properties, pinned here:

* a :meth:`ServiceProfile.fingerprint` depends on the statistical
  content only — equal profiles hash equally, any field drift changes
  the hash;
* a :meth:`ServiceRegistry.content_epoch` is independent of
  registration/insertion order (dict ordering) but sensitive to every
  optimizer-visible change (profiles, join methods, selectivities);
* a :func:`query_fingerprint` is invariant under alpha-renaming of
  variables but sensitive to constants, selectivities, and atom order
  (plan specs address atoms positionally).
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.parser import parse_query
from repro.serving.fingerprint import (
    canonical_query,
    plan_cache_key,
    query_fingerprint,
)
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableExactService, TableSearchService
from repro.sources.news import news_registry
from repro.sources.weekend import weekend_registry


class TestProfileFingerprint:
    def test_equal_profiles_hash_equally(self):
        a = exact_profile(erspi=2.0, response_time=1.5, chunk_size=10)
        b = exact_profile(erspi=2.0, response_time=1.5, chunk_size=10)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "change",
        [
            {"erspi": 3.0},
            {"response_time": 2.0},
            {"chunk_size": 5},
            {"decay": 40},
            {"cost_per_call": 2.0},
        ],
    )
    def test_any_field_drift_changes_the_hash(self, change):
        base = search_profile(chunk_size=10, response_time=1.5, decay=80)
        drifted = dataclasses.replace(base, **change)
        assert base.fingerprint() != drifted.fingerprint()

    def test_kind_participates(self):
        exact = exact_profile(erspi=10.0, response_time=1.0, chunk_size=10)
        search = search_profile(chunk_size=10, response_time=1.0, erspi=10.0)
        assert exact.fingerprint() != search.fingerprint()

    @given(
        erspi=st.floats(0.01, 100, allow_nan=False),
        tau=st.floats(0.01, 100, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_equality_tracks_field_equality(self, erspi, tau):
        base = exact_profile(erspi=1.0, response_time=1.0)
        other = exact_profile(erspi=erspi, response_time=tau)
        same_fields = erspi == 1.0 and tau == 1.0
        assert (base.fingerprint() == other.fingerprint()) == same_fields


def _two_service_registry(order: str) -> ServiceRegistry:
    """The same content, registered in two different orders."""
    from repro.model.schema import signature

    alpha = TableExactService(
        signature("alpha", ["A", "B"], ["io", "oi"]),
        exact_profile(erspi=2.0, response_time=1.0),
        [("a", "b")],
        pattern_profiles={"oi": exact_profile(erspi=5.0, response_time=1.0)},
    )
    beta = TableSearchService(
        signature("beta", ["A", "B"], ["io"]),
        search_profile(chunk_size=4, response_time=2.0),
        [("a", index) for index in range(8)],
        score=lambda row: -row[1],
    )
    registry = ServiceRegistry()
    for service in (alpha, beta) if order == "ab" else (beta, alpha):
        registry.register(service)
    if order == "ab":
        registry.register_join_method("alpha", "beta", JoinMethod.MERGE_SCAN)
        registry.register_join_selectivity("alpha", "beta", 0.1)
    else:
        registry.register_join_selectivity("beta", "alpha", 0.1)
        registry.register_join_method("beta", "alpha", JoinMethod.MERGE_SCAN)
    return registry


class TestRegistryEpoch:
    def test_insensitive_to_registration_and_dict_order(self):
        assert (
            _two_service_registry("ab").content_epoch()
            == _two_service_registry("ba").content_epoch()
        )

    def test_deterministic_across_builds(self):
        assert (
            weekend_registry().content_epoch()
            == weekend_registry().content_epoch()
        )

    def test_different_domains_have_different_epochs(self):
        assert (
            weekend_registry().content_epoch()
            != news_registry().content_epoch()
        )

    def test_selectivity_drift_bumps_the_epoch(self):
        registry = weekend_registry()
        before = registry.content_epoch()
        registry.register_join_selectivity("lowcost", "concerts", 0.5)
        assert registry.content_epoch() != before

    def test_join_method_drift_bumps_the_epoch(self):
        registry = weekend_registry()
        before = registry.content_epoch()
        registry.register_join_method(
            "lowcost", "concerts", JoinMethod.NESTED_LOOP
        )
        assert registry.content_epoch() != before

    def test_pattern_profile_override_participates(self):
        base = _two_service_registry("ab")
        from repro.model.schema import signature

        no_override = ServiceRegistry()
        no_override.register(
            TableExactService(
                signature("alpha", ["A", "B"], ["io", "oi"]),
                exact_profile(erspi=2.0, response_time=1.0),
                [("a", "b")],
            )
        )
        assert base.content_epoch() != no_override.content_epoch()


class TestQueryFingerprint:
    def test_alpha_renaming_is_invariant(self):
        a = parse_query("q(X, Y) :- s('m', X, D, Y), Y <= 120.")
        b = parse_query("q(A, B) :- s('m', A, E, B), B <= 120.")
        assert canonical_query(a) == canonical_query(b)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_constants_are_significant(self):
        a = parse_query("q(X) :- s('m', X).")
        b = parse_query("q(X) :- s('n', X).")
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_constant_type_is_significant(self):
        a = parse_query("q(X) :- s(X, Y), Y <= 5.")
        b = parse_query("q(X) :- s(X, Y), Y <= '5'.")
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_atom_order_is_significant(self):
        a = parse_query("q(X) :- s(X, Y), t(Y, Z).")
        b = parse_query("q(X) :- t(Y, Z), s(X, Y).")
        assert query_fingerprint(a) != query_fingerprint(b)

    def test_variable_sharing_structure_is_significant(self):
        joined = parse_query("q(X) :- s(X, Y), t(Y, Z).")
        cross = parse_query("q(X) :- s(X, Y), t(W, Z).")
        assert query_fingerprint(joined) != query_fingerprint(cross)

    def test_selectivity_participates(self):
        from repro.model.predicates import Comparison
        from repro.model.query import query
        from repro.model.atoms import Atom
        from repro.model.terms import Constant, Variable

        x, y = Variable("X"), Variable("Y")
        atoms = [Atom("s", (x, y))]

        def build(selectivity):
            return query(
                "q", [x], atoms,
                [Comparison(y, "<=", Constant(5), selectivity=selectivity)],
            )

        assert query_fingerprint(build(0.1)) != query_fingerprint(build(0.9))


class TestPlanCacheKey:
    def test_every_component_participates(self):
        base = plan_cache_key("fp", "epoch", "time", 10, "optimal", "cfg")
        for changed in (
            plan_cache_key("fp2", "epoch", "time", 10, "optimal", "cfg"),
            plan_cache_key("fp", "epoch2", "time", 10, "optimal", "cfg"),
            plan_cache_key("fp", "epoch", "requests", 10, "optimal", "cfg"),
            plan_cache_key("fp", "epoch", "time", 11, "optimal", "cfg"),
            plan_cache_key("fp", "epoch", "time", 10, "one-call", "cfg"),
            plan_cache_key("fp", "epoch", "time", 10, "optimal", "cfg2"),
        ):
            assert changed != base


class TestOptimizerConfigToken:
    def test_search_shaping_knobs_participate(self):
        import dataclasses

        from repro.optimizer.optimizer import OptimizerConfig
        from repro.serving.fingerprint import optimizer_config_token

        base = OptimizerConfig()
        token = optimizer_config_token(base)
        for change in (
            {"fetch_heuristic": "square"},
            {"explore_fetches": False},
            {"most_cogent_only": True},
            {"prune": False},
            {"max_topologies_per_sequence": 3},
        ):
            drifted = dataclasses.replace(base, **change)
            assert optimizer_config_token(drifted) != token, change

    def test_keyed_elsewhere_knobs_do_not(self):
        import dataclasses

        from repro.execution.cache import CacheSetting
        from repro.optimizer.optimizer import OptimizerConfig
        from repro.serving.fingerprint import optimizer_config_token

        base = OptimizerConfig()
        token = optimizer_config_token(base)
        # k and cache_setting are explicit plan-cache-key components,
        # and memoize is bit-identical by contract.
        for change in (
            {"k": 25},
            {"cache_setting": CacheSetting.NO_CACHE},
            {"memoize": False},
        ):
            drifted = dataclasses.replace(base, **change)
            assert optimizer_config_token(drifted) == token, change
