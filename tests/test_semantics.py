"""Semantics oracle: plan execution vs naive conjunctive-query evaluation.

The answer to a CQ over a data instance is defined model-theoretically
(Section 3.1); no matter which access patterns, topology, fetching
factors (high enough), or cache setting the engine uses, it must
compute exactly the tuples the naive evaluator derives by enumerating
all combinations of rows.  Verified on the showcase domains and on
randomized synthetic workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution.cache import CacheSetting
from repro.execution.engine import execute_plan
from repro.model.query import ConjunctiveQuery
from repro.model.terms import Constant, Variable
from repro.optimizer.patterns import permissible_sequences
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.builder import PlanBuilder
from repro.services.registry import ServiceRegistry


def naive_answers(
    query: ConjunctiveQuery, registry: ServiceRegistry
) -> frozenset[tuple]:
    """Reference evaluation: backtracking over the stored relations.

    Semantically identical to enumerating the full cross product, but
    prunes inconsistent bindings atom by atom so it terminates on the
    calibrated travel world too.
    """
    relations = [registry.service(atom.service).rows for atom in query.atoms]
    answers: set[tuple] = set()

    def _extend(
        bindings: dict[Variable, object], atom, row
    ) -> dict[Variable, object] | None:
        extended = dict(bindings)
        for term, value in zip(atom.terms, row):
            if isinstance(term, Constant):
                if term.value != value:
                    return None
            else:
                if term in extended and extended[term] != value:
                    return None
                extended[term] = value
        return extended

    def _recurse(index: int, bindings: dict[Variable, object]) -> None:
        if index == len(query.atoms):
            if all(p.holds(bindings) for p in query.predicates):
                answers.add(tuple(bindings[v] for v in query.head))
            return
        atom = query.atoms[index]
        for row in relations[index]:
            extended = _extend(bindings, atom, row)
            if extended is not None:
                _recurse(index + 1, extended)

    _recurse(0, {})
    return frozenset(answers)


def engine_answers(
    query: ConjunctiveQuery,
    registry: ServiceRegistry,
    cache_setting: CacheSetting = CacheSetting.NO_CACHE,
    fetches: int = 64,
) -> frozenset[tuple]:
    """Execute the first permissible plan with generous fetches."""
    sequences = permissible_sequences(query, registry.schema())
    assert sequences, "query must be executable"
    patterns = sequences[0]
    poset = TopologyEnumerator(query, patterns).all_posets()[0]
    fetch_map = {
        index: fetches
        for index, atom in enumerate(query.atoms)
        if registry.profile(atom.service, patterns[index].code).is_chunked
    }
    plan = PlanBuilder(query, registry).build(patterns, poset, fetches=fetch_map)
    result = execute_plan(
        plan, registry, head=query.head, cache_setting=cache_setting
    )
    return frozenset(result.answers(None))


class TestShowcaseDomains:
    def test_tiny_query(self, tiny_registry, tiny_query):
        assert engine_answers(tiny_query, tiny_registry) == naive_answers(
            tiny_query, tiny_registry
        )

    def test_weekend_query(self):
        from repro.sources.weekend import mahler_weekend_query, weekend_registry

        registry = weekend_registry()
        query = mahler_weekend_query()
        assert engine_answers(query, registry) == naive_answers(query, registry)

    def test_biblio_query(self):
        from repro.sources.biblio import biblio_registry, experts_query

        registry = biblio_registry()
        query = experts_query()
        assert engine_answers(query, registry) == naive_answers(query, registry)

    @pytest.mark.parametrize("setting", list(CacheSetting), ids=lambda s: s.value)
    def test_cache_settings_preserve_semantics(
        self, tiny_registry, tiny_query, setting
    ):
        assert engine_answers(
            tiny_query, tiny_registry, cache_setting=setting
        ) == naive_answers(tiny_query, tiny_registry)


class TestTravelAllTopologies:
    def test_every_topology_matches_naive(self, registry, travel_query):
        expected = naive_answers(travel_query, registry)
        from repro.sources.travel import alpha1_patterns

        posets = TopologyEnumerator(travel_query, alpha1_patterns()).all_posets()
        builder = PlanBuilder(travel_query, registry)
        # Generous fetches so chunking never truncates results.
        fetch_map = {0: 8, 1: 8}
        for poset in posets[:6]:  # a representative sample, they agree
            plan = builder.build(alpha1_patterns(), poset, fetches=fetch_map)
            result = execute_plan(plan, registry, head=travel_query.head)
            assert frozenset(result.answers(None)) == expected


class TestRandomWorkloads:
    @given(st.integers(1, 4), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_synthetic_chains_match_naive(self, n_services, seed):
        from repro.sources.synthetic import generate_workload

        workload = generate_workload(
            n_services=n_services, seed=seed, keys_per_space=5, fanout=2
        )
        expected = naive_answers(workload.query, workload.registry)
        actual = engine_answers(workload.query, workload.registry)
        assert actual == expected

    @given(st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_enriched_workloads_match_naive(self, seed):
        from repro.sources.synthetic import generate_workload

        workload = generate_workload(
            n_services=2, seed=seed, keys_per_space=4, fanout=2, enrichments=1
        )
        expected = naive_answers(workload.query, workload.registry)
        actual = engine_answers(workload.query, workload.registry)
        assert actual == expected
