"""Block-contiguity invariant (Section 5.2).

"By construction, during the execution of a query, all the tuples
originating from a proliferative service are retrieved contiguously,
and will therefore be contiguously sent forward in the plan preserving
the same values for the input fields of the invocation of
non-dependent services."

This is the property the one-call cache exploits; we verify it at the
engine level by observing the order in which the hotel service sees
its inputs in plan S.
"""

from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.model.schema import AccessPattern
from repro.plans.builder import PlanBuilder
from repro.services.base import Service
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_serial,
)


class _RecordingService(Service):
    """Wraps a service and records the input of every invocation."""

    def __init__(self, inner: Service) -> None:
        self._inner = inner
        self.seen: list[tuple] = []
        super().__init__(inner.signature, inner.profile)

    def invoke(self, pattern: AccessPattern, inputs, page: int = 0):
        self.seen.append(tuple(sorted(inputs.items())))
        return self._inner.invoke(pattern, inputs, page=page)

    def _compute(self, pattern, inputs, page):  # pragma: no cover
        raise NotImplementedError("delegated via invoke")


def _blocks(values: list[tuple]) -> int:
    """Number of maximal runs of equal consecutive values."""
    count = 0
    previous = object()
    for value in values:
        if value != previous:
            count += 1
            previous = value
    return count


class TestBlockContiguity:
    def test_hotel_inputs_arrive_in_blocks(self, registry, travel_query):
        recorder = _RecordingService(registry.service("hotel"))
        registry._services["hotel"] = recorder  # swap in the probe
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        engine = ExecutionEngine(registry, CacheSetting.NO_CACHE)
        engine.execute(plan, head=travel_query.head)
        # 284 invocations must arrive as exactly 15 contiguous blocks
        # (one per weather-surviving tuple with flights): the flight
        # tuples of one input are contiguous, so the hotel inputs they
        # induce are too.
        assert len(recorder.seen) == 284
        assert _blocks(recorder.seen) == 15

    def test_shuffled_order_breaks_blocks(self, registry, travel_query):
        recorder = _RecordingService(registry.service("hotel"))
        registry._services["hotel"] = recorder
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
        )
        engine = ExecutionEngine(
            registry, CacheSetting.NO_CACHE, mode=ExecutionMode.MULTITHREADED
        )
        engine.execute(plan, head=travel_query.head)
        # Randomized dispatch produces many more (shorter) blocks,
        # which is exactly why the one-call cache degrades.
        assert _blocks(recorder.seen) > 15
