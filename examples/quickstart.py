"""Quickstart: define two services, write a query, optimize, execute.

The scenario: a directory service listing restaurants per city (exact)
and a review search service returning dishes in rating order (search,
chunked).  We ask for the best dishes in Italian cities, and let the
optimizer schedule the calls.

Run with::

    python examples/quickstart.py
"""

from repro import (
    CacheSetting,
    ExecutionEngine,
    ExecutionTimeMetric,
    Optimizer,
    OptimizerConfig,
    ServiceRegistry,
    TableExactService,
    TableSearchService,
    exact_profile,
    parse_query,
    render_ascii,
    search_profile,
    signature,
)


def build_registry() -> ServiceRegistry:
    """Two table-backed services standing in for remote Web services."""
    registry = ServiceRegistry()
    registry.register(
        TableExactService(
            # restaurants(Country, City, Name): ask by country.
            signature("restaurants", ["Country", "City", "Name"], ["ioo"]),
            exact_profile(erspi=3.0, response_time=0.8),
            [
                ("it", "Roma", "Da Enzo"),
                ("it", "Roma", "Felice"),
                ("it", "Milano", "Trippa"),
                ("it", "Bologna", "Oltre"),
                ("fr", "Paris", "Septime"),
            ],
        )
    )
    registry.register(
        TableSearchService(
            # dishes(Restaurant, Dish, Rating): ranked by rating, paged.
            signature("dishes", ["Name", "Dish", "Rating"], ["ioo"]),
            search_profile(chunk_size=2, response_time=1.5),
            [
                ("Da Enzo", "Carbonara", 9.6),
                ("Da Enzo", "Cacio e pepe", 9.1),
                ("Da Enzo", "Tiramisu", 8.7),
                ("Felice", "Amatriciana", 9.4),
                ("Felice", "Gricia", 8.9),
                ("Trippa", "Trippa alla milanese", 9.2),
                ("Trippa", "Vitello tonnato", 8.8),
                ("Oltre", "Tortellini", 9.5),
                ("Septime", "Tasting menu", 9.9),
            ],
            score=lambda row: float(row[2]),
        )
    )
    return registry


def main() -> None:
    registry = build_registry()

    # A multi-domain conjunctive query in the paper's datalog notation.
    query = parse_query(
        """
        q(City, Restaurant, Dish, Rating) :-
            restaurants('it', City, Restaurant),
            dishes(Restaurant, Dish, Rating),
            Rating >= 8.8.
        """
    )
    print("Query:")
    print(f"  {query}\n")

    # Optimize for the 5 best answers under the execution-time metric.
    optimizer = Optimizer(
        registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=5, cache_setting=CacheSetting.ONE_CALL),
    )
    best = optimizer.optimize(query)
    print(f"Chosen plan ({best.describe()}):")
    print(render_ascii(best.plan, best.annotation))
    print(f"Search stats: {best.stats.summary()}\n")

    # Execute and show the composed, ranked answers.
    engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
    result = engine.execute(best.plan, head=query.head, k=5)
    print("Top answers (composed ranking):")
    print(result.table.render(5))
    print(f"\nSimulated time: {result.elapsed:.1f}s")
    print(result.stats.summary())


if __name__ == "__main__":
    main()
