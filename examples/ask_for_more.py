"""Progressive execution: the "ask for more" interaction (Section 2.2).

"A user can either be satisfied with the first k answers, or ask for
more results of the same query ..."

The progressive executor starts with one fetch per chunked service and
grows the fetching factors across rounds; a shared optimal cache makes
continuations pay only for the *new* fetches.

Run with::

    python examples/ask_for_more.py
"""

from repro.execution.progressive import ProgressiveExecutor
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    running_example_query,
    travel_registry,
)


def main() -> None:
    registry = travel_registry()
    query = running_example_query()
    plan = PlanBuilder(query, registry).build(
        alpha1_patterns(), poset_optimal(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 1},
    )
    executor = ProgressiveExecutor(
        registry=registry, plan=plan, head=tuple(query.head)
    )

    result = executor.run(k=5)
    print(f"First batch: {len(result.rows)} answers "
          f"(fetches {executor.fetch_vector()})")
    print(result.table.render(5))

    result = executor.more(20)
    print(f"\nAfter asking for more: {len(result.rows)} answers "
          f"(fetches {executor.fetch_vector()})")
    print(f"cache hits on continuation: {result.stats.total_cache_hits}")

    print("\nRound history:")
    for index, round_info in enumerate(executor.rounds, start=1):
        print(
            f"  round {index}: fetches={round_info.fetches} "
            f"answers={round_info.answers} elapsed={round_info.elapsed:.1f}s"
        )


if __name__ == "__main__":
    main()
