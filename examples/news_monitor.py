"""The news-management domain (Section 6) with a query template.

Optimize once per *template* (Section 2.2), then execute the same plan
spec for different parameter bindings: topic and sector vary, the plan
does not.

Run with::

    python examples/news_monitor.py
"""

from repro import CacheSetting, ExecutionEngine, ExecutionTimeMetric
from repro.model.atoms import Atom
from repro.model.predicates import Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.template import QueryTemplate, parameter
from repro.model.terms import Constant, Variable
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.render import render_ascii
from repro.plans.spec import PlanSpec
from repro.sources.news import news_registry


def build_template() -> QueryTemplate:
    article, headline = Variable("Article"), Variable("Headline")
    company, date = Variable("Company"), Variable("Date")
    change, country = Variable("Change"), Variable("Country")
    return QueryTemplate(
        ConjunctiveQuery(
            name="marketnews",
            head=(company, headline, date, change),
            atoms=(
                Atom(
                    "newssearch",
                    (parameter("topic"), article, headline, company, date),
                ),
                Atom("quotes", (company, date, change)),
                Atom("profile", (company, parameter("sector"), country)),
            ),
            predicates=(
                Comparison(change, ">=", Constant(0), selectivity=0.5),
            ),
        )
    )


def main() -> None:
    registry = news_registry()
    template = build_template()
    print(f"Template (parameters {template.parameters}):")
    print(f"  {template}\n")

    # Optimize once, on a representative instantiation.
    reference = template.instantiate({"topic": "merger", "sector": "tech"})
    best = Optimizer(
        registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=3, cache_setting=CacheSetting.ONE_CALL),
    ).optimize(reference)
    spec = PlanSpec.from_optimized(best)
    print("Plan optimized once for the template:")
    print(render_ascii(best.plan, best.annotation))
    print(f"  persisted spec: {spec.to_json()}\n")

    # Execute the same spec for several bindings.
    engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
    for topic, sector in [("merger", "tech"), ("earnings", "energy"),
                          ("recall", "retail")]:
        query = template.instantiate({"topic": topic, "sector": sector})
        plan = spec.build(query, registry)
        result = engine.execute(plan, head=query.head, k=3)
        print(f"--- {topic} news about {sector} companies ---")
        print(result.table.render(3))
        print()


if __name__ == "__main__":
    main()
