"""The bioinformatics scenario of Section 6.

"We were able to query protein repositories to find evolutionary
relationships between human and mouse proteins including repeated
protein domains and involved in the glycolysis metabolic pathway,
using InterPro, UniProt, BLAST, and KEGG."

The synthetic equivalents keep the same interaction structure; the
BLAST analogue is a search service with a *decay* bound, which caps its
fetching factor and drives the registry toward nested-loop joins.

Run with::

    python examples/bioinformatics.py
"""

from repro import (
    CacheSetting,
    ExecutionEngine,
    ExecutionTimeMetric,
    Optimizer,
    OptimizerConfig,
    render_ascii,
)
from repro.sources.bio import bio_registry, glycolysis_homolog_query


def main() -> None:
    registry = bio_registry()
    query = glycolysis_homolog_query()
    print("Query:")
    print(f"  {query}\n")

    blast = registry.profile("blast")
    print(
        f"blast is a search service: chunk {blast.chunk_size}, "
        f"decay {blast.decay} (at most {blast.max_fetches()} useful fetches)\n"
    )

    optimizer = Optimizer(
        registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=8, cache_setting=CacheSetting.ONE_CALL),
    )
    best = optimizer.optimize(query)
    print("Optimal plan:")
    print(render_ascii(best.plan, best.annotation))
    print(f"  cost {best.cost:.1f}s, fetches {best.fetches}\n")

    engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
    result = engine.execute(best.plan, head=query.head, k=8)
    print("Human glycolysis proteins with repeated-domain mouse homologs:")
    print(result.table.render(8))
    print(f"\n{result.stats.summary()}")


if __name__ == "__main__":
    main()
