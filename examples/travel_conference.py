"""The paper's running example, end to end (Sections 2.5, 5, 6).

"Find all database conferences in the next six months in locations
where the average temperature is 28°C degrees and for which a cheap
travel solution including a luxury accommodation exists."

The script optimizes the query of Figure 3 over the four services of
Figure 2, prints the annotated optimal plan (Figure 8), executes it
under each cache setting (Figure 11), and renders the answer table
(the Figure 10 screenshot, as text).

Run with::

    python examples/travel_conference.py
"""

from repro import (
    CacheSetting,
    ExecutionEngine,
    ExecutionTimeMetric,
    Optimizer,
    OptimizerConfig,
    render_ascii,
    running_example_query,
    travel_registry,
)
from repro.experiments import run_figure11


def main() -> None:
    registry = travel_registry()
    query = running_example_query()
    print("Query (Figure 3):")
    print(f"  {query}\n")

    # --- optimize ---------------------------------------------------------
    optimizer = Optimizer(
        registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=10, cache_setting=CacheSetting.ONE_CALL),
    )
    best = optimizer.optimize(query)
    print("Optimal plan (Figures 7d/8):")
    print(render_ascii(best.plan, best.annotation))
    print(f"  expected cost {best.cost:.1f}s, expected answers "
          f"{best.expected_answers:.1f}, fetches {best.fetches}")
    print(f"  search: {best.stats.summary()}\n")

    # --- execute (Figure 10) -----------------------------------------------
    engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
    result = engine.execute(best.plan, head=query.head, k=10)
    print("Answers in composed rank order (Figure 10):")
    print(result.table.render(10))
    print(f"\n{result.stats.summary()}\n")

    # --- the cache/plan grid (Figure 11) -----------------------------------
    print("Figure 11 — plans S/P/O under the three cache settings:")
    grid = run_figure11(registry, query)
    print(grid.render())
    print(
        "\nAll call counts match the paper exactly: "
        f"{grid.all_calls_match_paper}; "
        f"time orderings hold: {grid.time_shape_holds()}"
    )


if __name__ == "__main__":
    main()
