"""Regenerate every table and figure of the paper in one run.

Prints Table 1, the Figure 7 plan space, the Figure 8 annotated plan,
the Figure 11 grid (calls and times), and the multithreading
experiment, each next to the paper's published values.

Run with::

    python examples/reproduce_paper.py
"""

from repro.experiments import (
    run_figure7,
    run_figure8,
    run_figure11,
    run_multithreading,
    run_table1,
)
from repro.services.profiler import format_profile_table
from repro.sources.travel import travel_registry
from repro.sources.world import build_world


def main() -> None:
    world = build_world()

    print("=" * 72)
    print("Table 1 — service characterization (sampled profiles)")
    print("=" * 72)
    print(format_profile_table(run_table1(travel_registry(world), world)))
    print(
        "paper: conf exact -/20/1.2s | weather exact -/0.05/1.5s "
        "(0.05 = with 28°C filter)\n"
        "       flight search 25/-/9.7s | hotel search 5/-/4.9s\n"
    )

    print("=" * 72)
    print("Figure 7 / Example 5.1 — the 19 alternative plans (ETM, k=10)")
    print("=" * 72)
    topologies = run_figure7(travel_registry(world))
    for rank, costed in enumerate(topologies, start=1):
        print(f"{rank:>3}. {costed.describe()}")
    print(f"paper: 19 plans; plan O optimal — ours: {len(topologies)} plans,\n"
          f"       best = {topologies[0].describe()}\n")

    print("=" * 72)
    print("Figure 8 — the annotated optimal physical plan")
    print("=" * 72)
    figure8 = run_figure8(travel_registry(world))
    print(figure8.render())
    print(f"fetching factors (Eq. 6): {figure8.fetches} "
          "(paper: F_flight=3, F_hotel=4)\n")

    print("=" * 72)
    print("Figure 11 — plans S/P/O under three cache settings")
    print("=" * 72)
    grid = run_figure11(travel_registry(world))
    print(grid.render())
    print(f"calls match the paper exactly: {grid.all_calls_match_paper}")
    print(f"time orderings hold:          {grid.time_shape_holds()}\n")

    print("=" * 72)
    print("Multithreading experiment (plan S, one-call cache)")
    print("=" * 72)
    threads = run_multithreading(travel_registry(world))
    print(
        f"ordered:  {threads.ordered_elapsed:7.1f}s, "
        f"{threads.ordered_hotel_calls} hotel calls"
    )
    print(
        f"threaded: {threads.threaded_elapsed:7.1f}s, "
        f"{threads.threaded_hotel_calls} hotel calls "
        f"(speedup {threads.speedup:.1f}x, cache degraded: "
        f"{threads.cache_degraded})"
    )
    print("paper: 374s -> 76s; hotel calls 15 -> 212 of 284")


if __name__ == "__main__":
    main()
