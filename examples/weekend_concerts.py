"""The third query of the paper's abstract.

"Can I spend an April weekend in a city served by a low-cost direct
flight from Milano offering a Mahler's symphony?"

Two strategies are executable: drive from the fares (browse cheap
destinations, then check the programme) or from the concerts (find
Mahler performances, then price the route).  Which one wins depends on
the metric — this example optimizes under both and compares.

Run with::

    python examples/weekend_concerts.py
"""

from repro import (
    CacheSetting,
    ExecutionEngine,
    ExecutionTimeMetric,
    Optimizer,
    OptimizerConfig,
    RequestResponseMetric,
    render_ascii,
)
from repro.sources.weekend import mahler_weekend_query, weekend_registry


def main() -> None:
    registry = weekend_registry()
    query = mahler_weekend_query(budget=120)
    print("Query:")
    print(f"  {query}\n")

    for metric in (ExecutionTimeMetric(), RequestResponseMetric()):
        optimizer = Optimizer(
            registry, metric,
            OptimizerConfig(k=5, cache_setting=CacheSetting.ONE_CALL),
        )
        best = optimizer.optimize(query)
        print(f"--- optimizing for {metric.name} ---")
        print(render_ascii(best.plan, best.annotation))
        print(
            f"  cost {best.cost:.1f}, patterns "
            f"{[p.code for p in best.patterns]}\n"
        )

        engine = ExecutionEngine(registry, cache_setting=CacheSetting.ONE_CALL)
        result = engine.execute(best.plan, head=query.head, k=5)
        print("  Weekend options (cheapest fares first):")
        for line in result.table.render(5).splitlines():
            print(f"  {line}")
        print(f"  simulated time: {result.elapsed:.1f}s\n")


if __name__ == "__main__":
    main()
