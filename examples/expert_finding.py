"""The second query of the paper's abstract.

"Who are the strongest experts on service computing based upon their
recent publication record and accepted European projects?"

A ranked publication index (search service) is combined with exact
authorship and project-funding services; the selective projects
service prunes most candidate authors.

Run with::

    python examples/expert_finding.py
"""

from repro import (
    CacheSetting,
    ExecutionEngine,
    Optimizer,
    OptimizerConfig,
    RequestResponseMetric,
    render_ascii,
)
from repro.sources.biblio import biblio_registry, experts_query, planted_experts


def main() -> None:
    registry = biblio_registry()
    query = experts_query("service computing")
    print("Query:")
    print(f"  {query}\n")

    # Minimizing the number of service requests: the request-response
    # metric favors sequencing the selective projects service last.
    optimizer = Optimizer(
        registry,
        RequestResponseMetric(),
        OptimizerConfig(k=8, cache_setting=CacheSetting.OPTIMAL),
    )
    best = optimizer.optimize(query)
    print("Plan minimizing service requests:")
    print(render_ascii(best.plan, best.annotation))
    print(f"  expected requests: {best.cost:.1f}\n")

    engine = ExecutionEngine(registry, cache_setting=CacheSetting.OPTIMAL)
    result = engine.execute(best.plan, head=query.head, k=8)
    print("Experts (by composed publication rank):")
    print(result.table.render(8))

    found = {answer[0] for answer in result.answers()}
    print(f"\nPlanted ground truth: {planted_experts()}")
    print(f"Recovered experts:   {sorted(found & set(planted_experts()))}")
    print(f"\n{result.stats.summary()}")


if __name__ == "__main__":
    main()
