"""Ranking-quality ablation: "greedy" vs "square is better" (§4.3.1).

The paper motivates the square heuristic with scenarios "in which
ranking of search services quickly decreases, and fetching many chunks
of results only from few, selected services does not pay off".  We
construct such a scenario: two ranked lists joined under a combined
score threshold, with asymmetric response times so the greedy
heuristic piles fetches onto the branch that is free under ETM,
exploring one ranking deeply and the other barely.  The *composed
rank* of the produced top answers quantifies the price.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine
from repro.model.atoms import Atom
from repro.model.predicates import BinaryExpression, Comparison
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.optimizer.fetches import (
    FetchContext,
    greedy_assignment,
    square_assignment,
)
from repro.plans.builder import PlanBuilder, parallel_after
from repro.services.profile import exact_profile, search_profile
from repro.services.registry import ServiceRegistry
from repro.services.table import TableExactService, TableSearchService

pytestmark = pytest.mark.bench

K = 8


def _registry() -> ServiceRegistry:
    registry = ServiceRegistry()
    registry.register(
        TableExactService(
            signature("seed", ["Key"], ["o"]),
            exact_profile(erspi=1.0, response_time=0.2),
            [("k",)],
        )
    )
    # Scores decrease steeply with rank on both sides.
    a_rows = [("k", f"a{i:02d}", 100 - 4 * i) for i in range(30)]
    b_rows = [("k", f"b{i:02d}", 100 - 2 * i) for i in range(50)]
    registry.register(
        TableSearchService(
            signature("alist", ["Key", "Item", "S"], ["ioo"]),
            search_profile(chunk_size=2, response_time=0.5),
            a_rows,
            score=lambda row: float(row[2]),
        )
    )
    registry.register(
        TableSearchService(
            signature("blist", ["Key", "Thing", "T"], ["ioo"]),
            search_profile(chunk_size=10, response_time=20.0),
            b_rows,
            score=lambda row: float(row[2]),
        )
    )
    return registry


def _query() -> ConjunctiveQuery:
    key, item, thing = Variable("Key"), Variable("Item"), Variable("Thing")
    s, t = Variable("S"), Variable("T")
    return ConjunctiveQuery(
        name="pairs",
        head=(item, thing, s, t),
        atoms=(
            Atom("seed", (key,)),
            Atom("alist", (key, item, s)),
            Atom("blist", (key, thing, t)),
        ),
        predicates=(
            Comparison(
                BinaryExpression("+", s, t), ">=", Constant(150),
                selectivity=0.05,
            ),
        ),
    )


def _patterns(registry):
    return (
        registry.signature("seed").pattern("o"),
        registry.signature("alist").pattern("ioo"),
        registry.signature("blist").pattern("ioo"),
    )


def _quality(registry, query, fetches) -> tuple[float, int, dict]:
    plan = PlanBuilder(query, registry).build(
        _patterns(registry), parallel_after(3, first=0), fetches=fetches
    )
    engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
    result = engine.execute(plan, head=query.head, k=K)
    top = result.rows[:K]
    if not top:
        return float("inf"), 0, dict(fetches)
    mean_rank = sum(row.rank_key() for row in top) / len(top)
    return mean_rank, len(result.rows), dict(fetches)


class TestFetchQuality:
    @pytest.fixture()
    def setup(self):
        registry = _registry()
        query = _query()
        plan = PlanBuilder(query, registry).build(
            _patterns(registry), parallel_after(3, first=0)
        )
        context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)
        return registry, query, context

    def test_bench_quality_comparison(self, benchmark, setup, out_dir):
        registry, query, context = setup

        def compare():
            greedy = greedy_assignment(context, K)
            square = square_assignment(context, K)
            return greedy, square

        greedy, square = benchmark(compare)
        self._check_and_write(registry, query, greedy, square, out_dir)

    def test_square_balances_and_ranks_better(self, setup, out_dir):
        registry, query, context = setup
        greedy = greedy_assignment(context, K)
        square = square_assignment(context, K)
        self._check_and_write(registry, query, greedy, square, out_dir)

    @staticmethod
    def _check_and_write(registry, query, greedy, square, out_dir):
        # Both heuristics must reach k expected answers.
        assert greedy.feasible and square.feasible
        # The trade-off the paper describes: greedy spends the least
        # cost reaching k; square explores both rankings in balanced
        # prefixes (equal explored tuples up to one chunk), which
        # over-delivers answers and never ranks worse.
        assert greedy.cost <= square.cost + 1e-9
        assert square.output_size >= greedy.output_size - 1e-9
        square_explored = (square.fetches[1] * 2, square.fetches[2] * 10)
        assert abs(square_explored[0] - square_explored[1]) <= 10  # max chunk
        greedy_explored = (greedy.fetches[1] * 2, greedy.fetches[2] * 10)

        greedy_rank, greedy_n, _ = _quality(registry, query, greedy.fetches)
        square_rank, square_n, _ = _quality(registry, query, square.fetches)
        assert square_rank <= greedy_rank + 1e-9  # never worse
        assert square_n >= greedy_n

        lines = [
            f"Fetch-quality ablation (k={K}, combined-score join)",
            "",
            f"{'heuristic':<8} {'fetches':<16} {'explored':<12} {'cost':>7} "
            f"{'answers':>8} {'mean top rank':>14}",
            f"{'greedy':<8} {str(greedy.fetches):<16} "
            f"{str(greedy_explored):<12} {greedy.cost:>7.1f} "
            f"{greedy_n:>8} {greedy_rank:>14.2f}",
            f"{'square':<8} {str(square.fetches):<16} "
            f"{str(square_explored):<12} {square.cost:>7.1f} "
            f"{square_n:>8} {square_rank:>14.2f}",
            "",
            "Greedy reaches k at minimal cost; square equalizes the",
            "explored prefixes of the two rankings (the paper's advice",
            "when rankings decay quickly), over-delivering answers at",
            "equal-or-better composed rank for a higher cost.",
        ]
        write_artifact(out_dir, "ablation_fetch_quality.txt", "\n".join(lines))
