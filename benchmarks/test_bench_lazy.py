"""Demand-driven lazy fetching trajectory (``BENCH_lazy.json``).

Measures what the lazy fetch subsystem was built to save: **remote
service work** — calls, page fetches, and raw tuples pulled — for
top-k executions at k ∈ {1, 10, 100}, against the eager streamed
baseline (PR 2: early exit saves join work, but every service is still
fully materialized up front) and the full-scan oracle.

Two workloads:

* **pair** — the paper's two-search-services shape on the
  rank-monotone plane: both services return their tuples in rank
  order (rank = position), every cell of the candidate plane is a
  matching combination, and the composed rank of cell ``(i, j)`` is
  ``i + j`` — exactly the regime where a pull-based rank-join touches
  ``O(k)`` rows per side;
* **serial** — a serial-shaped plan: a ranked ``feeder`` proliferates
  into FEEDS tuples, each feeding the multi-feed ``lefts`` node (one
  budgeted block per feed tuple), merged with a single-feed
  ``rights`` service at the final join.  This is the shape PR 5's
  :class:`~repro.execution.lazy.MultiFeedCursor` exists for: before
  it, multi-feed inputs were materialized eagerly and serial plans
  saved no remote work at all.

Three engines run each plan:

* **oracle** — ``ExecutionMode.PARALLEL`` full materialization +
  ``compose_ranking`` (the equivalence reference);
* **eager** — ``ExecutionMode.STREAMED`` with ``lazy_streaming=False``:
  early exit on the join walk, eager service materialization;
* **lazy** — ``ExecutionMode.STREAMED`` (default): the final join
  pulls its single-feed inputs through lazy cursors.

The acceptance assertion is the point of the subsystem: at k = 1 and
k = 10 the lazy execution must fetch **strictly fewer service tuples**
than eager streaming (and never more at any k), while the emitted
rows stay bit-identical to the oracle.
"""

from __future__ import annotations

import json
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.results import compose_ranking
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService

pytestmark = pytest.mark.bench

SIDE = bench_scale(400, 60)
CHUNK = 10
FETCHES = -(-SIDE // CHUNK)  # enough budget to drain either service
KS = (1, 10, 100)

#: Serial-plan workload: FEEDS feeder tuples, each opening one block
#: of PER ranked tuples on the multi-feed node.
FEEDS = bench_scale(20, 6)
PER = bench_scale(40, 10)
SERIAL_CHUNK = 5
SERIAL_FETCHES = -(-PER // SERIAL_CHUNK)


def _plan(method: JoinMethod):
    """Two single-feed search services over the SIDE×SIDE plane."""
    registry = ServiceRegistry()
    for name, var in (("lefts", "L"), ("rights", "R")):
        registry.register(
            TableSearchService(
                signature(name, ["Q", "K", var], ["ioo"]),
                search_profile(chunk_size=CHUNK, response_time=1.0),
                [("q", 0, index) for index in range(SIDE)],
                score=lambda row: float(-row[2]),
            )
        )
    registry.register_join_method("lefts", "rights", method)
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="lazybench",
        head=(key, left_var, right_var),
        atoms=(
            Atom("lefts", (Constant("q"), key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: FETCHES, 1: FETCHES},
    )
    return registry, tuple(query.head), plan


def _serial_plan(method: JoinMethod):
    """feeder → multi-feed lefts (FEEDS blocks), joined with rights."""
    registry = ServiceRegistry()
    registry.register(
        TableSearchService(
            signature("feeder", ["Q", "X"], ["io"]),
            search_profile(chunk_size=FEEDS, response_time=1.0),
            [("q", x) for x in range(FEEDS)],
            score=lambda row: float(-row[1]),
        )
    )
    registry.register(
        TableSearchService(
            signature("lefts", ["X", "K", "L"], ["ioo"]),
            search_profile(chunk_size=SERIAL_CHUNK, response_time=1.0),
            [(x, 0, index) for x in range(FEEDS) for index in range(PER)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register(
        TableSearchService(
            signature("rights", ["Q", "K", "R"], ["ioo"]),
            search_profile(chunk_size=SERIAL_CHUNK, response_time=1.0),
            [("q", 0, index) for index in range(PER)],
            score=lambda row: float(-row[2]),
        )
    )
    registry.register_join_method("lefts", "rights", method)
    key = Variable("K")
    x, left_var, right_var = Variable("X"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="lazyserial",
        head=(key, left_var, right_var),
        atoms=(
            Atom("feeder", (Constant("q"), x)),
            Atom("lefts", (x, key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("feeder").pattern("io"),
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=3, pairs=frozenset({(0, 1)})),
        fetches={0: 1, 1: SERIAL_FETCHES, 2: SERIAL_FETCHES},
    )
    return registry, tuple(query.head), plan


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, max(time.perf_counter() - start, 1e-9)


def _measure(engine: ExecutionEngine, plan, head, k) -> dict:
    result, elapsed = _timed(lambda: engine.execute(plan, head=head, k=k))
    stats = result.stats
    return {
        "result": result,
        "service_calls": stats.total_calls,
        "page_fetches": stats.total_fetches,
        "tuples_fetched": stats.total_tuples_fetched,
        "lazy_tuples_fetched": stats.lazy_tuples_fetched,
        "lazy_calls_saved": stats.lazy_calls_saved,
        "lazy_blocks": stats.lazy_blocks,
        "lazy_blocks_untouched": stats.lazy_blocks_untouched,
        "cells_visited": stats.streamed_cells_visited,
        "wall_s": round(elapsed, 6),
    }


def _strip(measurement: dict) -> dict:
    return {key: value for key, value in measurement.items() if key != "result"}


class TestLazyFetchTrajectory:
    def test_write_bench_lazy(self, out_dir):
        per_method: dict[str, dict] = {}
        for method in (JoinMethod.MERGE_SCAN, JoinMethod.NESTED_LOOP):
            by_k: dict[str, dict] = {}
            for k in KS:
                registry, head, plan = _plan(method)
                oracle = ExecutionEngine(
                    registry, mode=ExecutionMode.PARALLEL
                ).execute(plan, head=head)
                expected = compose_ranking(oracle.rows, k)
                eager = _measure(
                    ExecutionEngine(
                        registry,
                        mode=ExecutionMode.STREAMED,
                        lazy_streaming=False,
                    ),
                    plan, head, k,
                )
                lazy = _measure(
                    ExecutionEngine(registry, mode=ExecutionMode.STREAMED),
                    plan, head, k,
                )
                # Oracle equivalence: identical rows, ranks, and order.
                for measured in (eager, lazy):
                    assert [
                        (r.bindings, r.ranks) for r in measured["result"].rows
                    ] == [(r.bindings, r.ranks) for r in expected]
                # The acceptance property: early exit now saves remote
                # work, strictly at small k, never costing extra.
                assert lazy["tuples_fetched"] <= eager["tuples_fetched"]
                assert lazy["page_fetches"] <= eager["page_fetches"]
                if k < SIDE:
                    assert lazy["tuples_fetched"] < eager["tuples_fetched"], (
                        method, k,
                    )
                by_k[f"k={k}"] = {
                    "eager_streamed": _strip(eager),
                    "lazy_streamed": _strip(lazy),
                }
            per_method[method.value] = by_k

        serial_per_method: dict[str, dict] = {}
        for method in (JoinMethod.MERGE_SCAN, JoinMethod.NESTED_LOOP):
            by_k = {}
            for k in KS:
                registry, head, plan = _serial_plan(method)
                oracle = ExecutionEngine(
                    registry, mode=ExecutionMode.PARALLEL
                ).execute(plan, head=head)
                expected = compose_ranking(oracle.rows, k)
                eager = _measure(
                    ExecutionEngine(
                        registry,
                        mode=ExecutionMode.STREAMED,
                        lazy_streaming=False,
                    ),
                    plan, head, k,
                )
                lazy = _measure(
                    ExecutionEngine(registry, mode=ExecutionMode.STREAMED),
                    plan, head, k,
                )
                for measured in (eager, lazy):
                    assert [
                        (r.bindings, r.ranks) for r in measured["result"].rows
                    ] == [(r.bindings, r.ranks) for r in expected]
                # The PR 5 acceptance property: the multi-feed node of
                # a serial plan now saves remote work too, strictly at
                # small k, never costing extra.
                assert lazy["tuples_fetched"] <= eager["tuples_fetched"]
                assert lazy["page_fetches"] <= eager["page_fetches"]
                if k < FEEDS * PER:
                    assert lazy["tuples_fetched"] < eager["tuples_fetched"], (
                        method, k,
                    )
                assert lazy["lazy_blocks"] == FEEDS + 1  # + rights cursor
                if k == 1:
                    assert lazy["lazy_blocks_untouched"] > 0
                by_k[f"k={k}"] = {
                    "eager_streamed": _strip(eager),
                    "lazy_streamed": _strip(lazy),
                }
            serial_per_method[method.value] = by_k

        payload = {
            "bench": "lazy",
            "quick": QUICK,
            "workload": {
                "plane": f"{SIDE}x{SIDE} all-candidate plane, rank-monotone "
                "single-feed search services (rank = position)",
                "chunk_size": CHUNK,
                "fetch_budget_pages": FETCHES,
                "k_values": list(KS),
                "baselines": "eager_streamed = ExecutionMode.STREAMED with "
                "lazy_streaming=False (PR 2 behavior); both paths checked "
                "bit-identical to compose_ranking over PARALLEL execution",
            },
            "per_method": per_method,
            "serial_workload": {
                "plan": "feeder -> multi-feed lefts (one budgeted block "
                "per feeder tuple), joined with single-feed rights",
                "feeds": FEEDS,
                "tuples_per_block": PER,
                "chunk_size": SERIAL_CHUNK,
                "fetch_budget_pages": SERIAL_FETCHES,
                "k_values": list(KS),
            },
            "serial_per_method": serial_per_method,
        }
        (out_dir / bench_out_name("BENCH_lazy.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_bench_lazy_streamed_top_10(self, benchmark):
        registry, head, plan = _plan(JoinMethod.MERGE_SCAN)
        engine = ExecutionEngine(registry, mode=ExecutionMode.STREAMED)
        result = benchmark(lambda: engine.execute(plan, head=head, k=10))
        assert len(result.rows) == 10
        assert result.stats.lazy_calls_saved > 0

    def test_bench_lazy_serial_multifeed_top_10(self, benchmark):
        registry, head, plan = _serial_plan(JoinMethod.MERGE_SCAN)
        engine = ExecutionEngine(registry, mode=ExecutionMode.STREAMED)
        result = benchmark(lambda: engine.execute(plan, head=head, k=10))
        assert len(result.rows) == 10
        assert result.stats.lazy_calls_saved > 0
        assert result.stats.lazy_blocks == FEEDS + 1
