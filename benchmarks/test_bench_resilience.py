"""Resilience trajectory (``BENCH_resilience.json``).

Sweeps the resilience layer (:mod:`repro.execution.resilience`) over a
fault-rate × retry-policy grid on the paper's two-search-services
shape, with partial-results mode on and an attempt-aware fault
schedule (re-attempts draw independently, so retries *can* recover a
failed page — the regime the layer exists for).  Per cell, across
seeded worlds:

* **success rate** — the fraction of worlds whose answers are
  bit-identical to the fault-free oracle's top-k;
* **graceful degradation** — mean answers returned and mean demoted
  blocks when the run is partial;
* **wasted work** — discarded round trips (failed attempts), which by
  design never enter the per-service accounting;
* **time-to-k** — mean virtual completion time (backoff is charged to
  the winning fetch's latency).

A second sweep measures hedging against straggling remotes: every
delayed page pull is duplicated once the reported latency crosses the
threshold, and on a remote-caching service the duplicate wins at the
fast repeat latency — virtual time-to-k drops while rows and the
per-service accounting stay bit-identical.

A third sweep is the **adaptive-vs-static** column (PR 10): the same
pair plan with a clean ``lefts_backup`` sibling registered, under
(a) mid-run service demotion — ``lefts`` units exhaust their retries
and static partial results must drop them, while sibling fallback
serves them from the backup — and (b) sustained latency drift —
``lefts`` answers 25x slower than profiled, the static run pays the
mis-costed plan's price to the end, the adaptive run splices onto the
sibling mid-flight.  Recorded per cell: exact-answer rate and virtual
time-to-k, static vs adaptive.

Acceptance (asserted on every sampled world):

* whenever the answers differ from the oracle's, the certificate is
  partial and names at least one dropped unit — honest degradation,
  never silent;
* at fault rate 0 every cell succeeds with zero wasted fetches;
* per fault rate, aggregate success never decreases with more
  attempts;
* the zero-fault adaptive cell is **bit-identical** to the static one
  — rows, ranks, and full per-round statistics;
* adaptive exact-answer rate never falls below static's at any fault
  rate, and under sustained drift the adaptive virtual time-to-k is
  strictly smaller.
"""

from __future__ import annotations

import json
import statistics
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.execution.adaptive import AdaptiveExecutor
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.progressive import ProgressiveExecutor
from repro.execution.resilience import (
    DriftPolicy,
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
)
from repro.model.atoms import Atom
from repro.model.query import ConjunctiveQuery
from repro.model.schema import signature
from repro.model.terms import Constant, Variable
from repro.plans.builder import PlanBuilder, Poset
from repro.services.profile import search_profile
from repro.services.registry import JoinMethod, ServiceRegistry
from repro.services.table import TableSearchService
from repro.testing import FaultSchedule, wrap_registry_flaky
from repro.testing.faults import FlakyService

pytestmark = pytest.mark.bench

SIDE = bench_scale(120, 30)
CHUNK = 5
FETCHES = -(-SIDE // CHUNK)
K = bench_scale(40, 12)
SEEDS = bench_scale(20, 5)
FAULT_RATES = (0.0, 0.1, 0.3)
ATTEMPT_CAPS = (1, 2, 4)  # retries 0 / 1 / 3
DELAY_RATES = (0.0, 0.5, 1.0)
HEDGE_THRESHOLD = 4.0


def _plan(remote_caching=False):
    """The paper's two-search-services shape (rank = position)."""
    registry = ServiceRegistry()
    for name, var in (("lefts", "L"), ("rights", "R")):
        registry.register(
            TableSearchService(
                signature(name, ["Q", "K", var], ["ioo"]),
                search_profile(chunk_size=CHUNK, response_time=1.0),
                [("q", index % 3, index) for index in range(SIDE)],
                score=lambda row: float(-row[2]),
                remote_caching=remote_caching,
            )
        )
    registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="resiliencebench",
        head=(key, left_var, right_var),
        atoms=(
            Atom("lefts", (Constant("q"), key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: FETCHES, 1: FETCHES},
    )
    return registry, tuple(query.head), plan


def _sig(rows):
    """Registry-independent row signature (rank labels are local ids)."""
    return [
        (dict(r.bindings), tuple(rank for _, rank in r.ranks)) for r in rows
    ]


def _sibling_plan(chunk=CHUNK):
    """The pair plan plus a clean ``lefts_backup`` equivalent.

    The backup shares lefts' signature domains, profile, data, and
    scores — the ideal fallback target — so an exact recovery is
    possible and every divergence is the resilience layer's doing.
    A smaller *chunk* means more pages for the same plane — the drift
    scenario uses chunk=1 so plenty of remote traffic remains to be
    saved after the splice.
    """
    registry = ServiceRegistry()
    for name, var in (("lefts", "L"), ("rights", "R"), ("lefts_backup", "L")):
        registry.register(
            TableSearchService(
                signature(name, ["Q", "K", var], ["ioo"]),
                search_profile(chunk_size=chunk, response_time=1.0),
                [("q", index % 3, index) for index in range(SIDE)],
                score=lambda row: float(-row[2]),
            )
        )
    registry.register_join_method("lefts", "rights", JoinMethod.MERGE_SCAN)
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    query = ConjunctiveQuery(
        name="adaptivebench",
        head=(key, left_var, right_var),
        atoms=(
            Atom("lefts", (Constant("q"), key, left_var)),
            Atom("rights", (Constant("q"), key, right_var)),
        ),
        predicates=(),
    )
    budget = -(-SIDE // chunk)
    plan = PlanBuilder(query, registry).build(
        (
            registry.signature("lefts").pattern("ioo"),
            registry.signature("rights").pattern("ioo"),
        ),
        Poset(n=2),
        fetches={0: budget, 1: budget},
    )
    return registry, tuple(query.head), plan


def _time_to_k(executor):
    """Cumulative virtual elapsed over every round, aborted ones too."""
    return sum(r.elapsed for r in executor.rounds)


def _service_fetches(executor, name):
    """Total remote fetches to *name* across every round."""
    return sum(
        r.stats.service(name).fetches
        for r in executor.rounds
        if r.stats is not None
    )


class TestResilienceTrajectory:
    def test_write_bench_resilience(self, out_dir):
        oracle_registry, head, oracle_plan = _plan()
        oracle = ExecutionEngine(
            oracle_registry, mode=ExecutionMode.STREAMED
        ).execute(oracle_plan, head=head, k=K)
        oracle_sig = _sig(oracle.rows)

        grid: dict[str, dict] = {}
        success_by_cell: dict[tuple[float, int], float] = {}
        for rate in FAULT_RATES:
            by_attempts: dict[str, dict] = {}
            for attempts in ATTEMPT_CAPS:
                config = ResilienceConfig(
                    retry=RetryPolicy(attempts=attempts),
                    partial_results=True,
                )
                successes = 0
                answers, demoted, wasted, elapsed, wall = [], [], [], [], []
                for seed in range(SEEDS):
                    registry, head, plan = _plan()
                    wrap_registry_flaky(
                        registry, FaultSchedule(seed=seed, fail_rate=rate),
                        attempt_aware=True,
                    )
                    engine = ExecutionEngine(
                        registry,
                        mode=ExecutionMode.STREAMED,
                        resilience=config,
                    )
                    start = time.perf_counter()
                    result = engine.execute(plan, head=head, k=K)
                    wall.append(time.perf_counter() - start)
                    certificate = result.certificate
                    assert certificate is not None
                    exact = _sig(result.rows) == oracle_sig
                    if exact:
                        successes += 1
                    else:
                        # Honest degradation: a diverging answer always
                        # names what it dropped — never a silent loss.
                        assert certificate.is_partial, (rate, attempts, seed)
                        assert certificate.dropped_services, (
                            rate, attempts, seed,
                        )
                    answers.append(len(result.rows))
                    demoted.append(len(certificate.dropped))
                    wasted.append(result.stats.wasted_fetches)
                    elapsed.append(result.stats.elapsed)
                success_rate = successes / SEEDS
                success_by_cell[(rate, attempts)] = success_rate
                if rate == 0.0:
                    assert success_rate == 1.0
                    assert sum(wasted) == 0
                by_attempts[f"attempts={attempts}"] = {
                    "success_rate": success_rate,
                    "mean_answers": statistics.mean(answers),
                    "mean_demoted_blocks": statistics.mean(demoted),
                    "mean_wasted_fetches": statistics.mean(wasted),
                    "mean_time_to_k_virtual_s": round(
                        statistics.mean(elapsed), 4
                    ),
                    "mean_wall_s": round(statistics.mean(wall), 6),
                }
            grid[f"fail_rate={rate}"] = by_attempts

        # More attempts never hurt aggregate success at any fault rate.
        for rate in FAULT_RATES:
            rates = [success_by_cell[(rate, a)] for a in ATTEMPT_CAPS]
            assert rates == sorted(rates), (rate, rates)

        hedging: dict[str, dict] = {}
        for delay_rate in DELAY_RATES:
            cell: dict[str, dict] = {}
            baseline_sig = None
            baseline_elapsed = None
            for hedged in (False, True):
                registry, head, plan = _plan(remote_caching=True)
                wrap_registry_flaky(
                    registry, FaultSchedule(seed=1, delay_rate=delay_rate)
                )
                config = (
                    ResilienceConfig(
                        hedge=HedgePolicy(threshold=HEDGE_THRESHOLD)
                    )
                    if hedged
                    else None
                )
                result = ExecutionEngine(
                    registry, mode=ExecutionMode.STREAMED, resilience=config
                ).execute(plan, head=head, k=K)
                if hedged:
                    # Rows never move; only straggler latency does.
                    assert _sig(result.rows) == baseline_sig
                    assert result.stats.elapsed <= baseline_elapsed
                else:
                    baseline_sig = _sig(result.rows)
                    baseline_elapsed = result.stats.elapsed
                cell["hedged" if hedged else "unhedged"] = {
                    "elapsed_virtual_s": round(result.stats.elapsed, 4),
                    "hedged_pulls": result.stats.hedged_pulls,
                    "hedged_wins": result.stats.hedged_wins,
                    "wasted_fetches": result.stats.wasted_fetches,
                }
            hedging[f"delay_rate={delay_rate}"] = cell

        # -- adaptive vs static -----------------------------------------
        # min_fetches=2: the lazy streamed top-k satisfies this plane
        # from very few pages, and a x25 drift is unambiguous after
        # two observations.
        drift_policy = DriftPolicy(latency_factor=3.0, min_fetches=2)
        static_config = ResilienceConfig(
            retry=RetryPolicy(attempts=2), partial_results=True
        )
        adaptive_config = ResilienceConfig(
            retry=RetryPolicy(attempts=2),
            partial_results=True,
            sibling_fallback=True,
        )

        def _executor(registry, head, plan, adaptive):
            common = dict(
                registry=registry, plan=plan, head=head,
                mode=ExecutionMode.STREAMED,
            )
            if adaptive:
                return AdaptiveExecutor(
                    resilience=adaptive_config, drift=drift_policy, **common
                )
            return ProgressiveExecutor(resilience=static_config, **common)

        sib_registry, sib_head, sib_plan = _sibling_plan()
        sib_oracle = ProgressiveExecutor(
            registry=sib_registry, plan=sib_plan, head=sib_head,
            mode=ExecutionMode.STREAMED,
        )
        sib_oracle_sig = _sig(sib_oracle.run(K).rows)

        # Zero-drift contract: with adaptivity armed but nothing
        # drifting, the adaptive run is bit-identical to the static one
        # in rows, ranks, AND full per-round accounting.
        zero_runs = []
        for adaptive in (False, True):
            registry, head, plan = _sibling_plan()
            executor = _executor(registry, head, plan, adaptive)
            result = executor.run(K)
            zero_runs.append((executor, result))
        static_zero, adaptive_zero = zero_runs
        assert _sig(adaptive_zero[1].rows) == _sig(static_zero[1].rows)
        assert adaptive_zero[0].replans == 0
        assert len(adaptive_zero[0].rounds) == len(static_zero[0].rounds)
        for ours, theirs in zip(adaptive_zero[0].rounds,
                                static_zero[0].rounds):
            assert ours.fetches == theirs.fetches
            assert ours.new_calls == theirs.new_calls
            assert ours.stats == theirs.stats

        demotion_grid: dict[str, dict] = {}
        for rate in FAULT_RATES:
            cells: dict[str, dict] = {}
            exact_by_column: dict[str, float] = {}
            for column in ("static", "adaptive"):
                adaptive = column == "adaptive"
                exact = 0
                answers, t2k, dropped, substituted, replans = (
                    [], [], [], [], []
                )
                for seed in range(SEEDS):
                    registry, head, plan = _sibling_plan()
                    if rate:
                        # Only lefts is sick; the backup (and rights)
                        # stay healthy — the demotion-recovery regime.
                        registry._services["lefts"] = FlakyService(
                            registry._services["lefts"],
                            FaultSchedule(seed=seed, fail_rate=rate),
                            attempt_aware=True,
                        )
                    executor = _executor(registry, head, plan, adaptive)
                    result = executor.run(K)
                    certificate = result.certificate
                    assert certificate is not None
                    if _sig(result.rows) == sib_oracle_sig:
                        exact += 1
                    else:
                        assert certificate.is_partial, (rate, column, seed)
                        assert certificate.dropped_services, (
                            rate, column, seed,
                        )
                    answers.append(len(result.rows))
                    t2k.append(_time_to_k(executor))
                    dropped.append(len(certificate.dropped))
                    substituted.append(len(certificate.substituted))
                    replans.append(getattr(executor, "replans", 0))
                exact_by_column[column] = exact / SEEDS
                cells[column] = {
                    "exact_answer_rate": exact / SEEDS,
                    "mean_answers": statistics.mean(answers),
                    "mean_time_to_k_virtual_s": round(
                        statistics.mean(t2k), 4
                    ),
                    "mean_dropped_blocks": statistics.mean(dropped),
                    "mean_substituted_blocks": statistics.mean(substituted),
                    "mean_replans": statistics.mean(replans),
                }
            # Sibling fallback can only improve exactness: the backup
            # serves what static partial results would have dropped.
            assert (
                exact_by_column["adaptive"] >= exact_by_column["static"]
            ), (rate, exact_by_column)
            demotion_grid[f"fail_rate={rate}"] = cells

        drift_cells: dict[str, dict] = {}
        for column in ("static", "adaptive"):
            registry, head, plan = _sibling_plan(chunk=1)
            registry._services["lefts"] = FlakyService(
                registry._services["lefts"],
                FaultSchedule(seed=1, delay_rate=1.0),
            )
            executor = _executor(registry, head, plan,
                                 column == "adaptive")
            result = executor.run(K)
            # Delay faults never change data: both columns stay exact.
            assert _sig(result.rows) == sib_oracle_sig, column
            drift_cells[column] = {
                "time_to_k_virtual_s": round(_time_to_k(executor), 4),
                "replans": getattr(executor, "replans", 0),
                "substituted_blocks": result.stats.substituted_blocks,
                "lefts_fetches": _service_fetches(executor, "lefts"),
                "backup_fetches": _service_fetches(
                    executor, "lefts_backup"
                ),
                "rights_fetches": _service_fetches(executor, "rights"),
            }
        # The splice pays off: drift is detected, the sibling serves
        # the rest at healthy latency, and the shared cache keeps the
        # untouched feed's remote traffic bounded by the static run's.
        assert drift_cells["adaptive"]["replans"] >= 1
        assert (
            drift_cells["adaptive"]["time_to_k_virtual_s"]
            < drift_cells["static"]["time_to_k_virtual_s"]
        ), drift_cells
        assert (
            drift_cells["adaptive"]["rights_fetches"]
            <= drift_cells["static"]["rights_fetches"]
        ), drift_cells

        payload = {
            "bench": "resilience",
            "quick": QUICK,
            "workload": {
                "plane": f"{SIDE}x{SIDE} pair plan, chunk={CHUNK}, "
                f"k={K}, {SEEDS} seeded worlds per cell",
                "fault_rates": list(FAULT_RATES),
                "attempt_caps": list(ATTEMPT_CAPS),
                "mode": "STREAMED lazy top-k, partial_results=True, "
                "attempt-aware schedule (re-attempts draw independently)",
            },
            "retry_grid": grid,
            "hedging": {
                "workload": "same pair plan over remote-caching services; "
                f"delay faults multiply latency x25, threshold="
                f"{HEDGE_THRESHOLD}s",
                "per_delay_rate": hedging,
            },
            "adaptive_vs_static": {
                "workload": "same pair plan plus a clean lefts_backup "
                "sibling; static = retries(2) + partial results, "
                "adaptive = same + sibling fallback + drift splice "
                "(latency_factor=3, min_fetches=2); STREAMED mode",
                "zero_drift_bit_identical": True,
                "demotion_recovery": demotion_grid,
                "drift_recovery": {
                    "workload": "lefts delayed x25 on every page "
                    "(sustained drift, no data change)",
                    **drift_cells,
                },
            },
        }
        (out_dir / bench_out_name("BENCH_resilience.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_bench_retry_recovery_top_10(self, benchmark):
        registry, head, plan = _plan()
        wrap_registry_flaky(
            registry, FaultSchedule(seed=3, fail_rate=0.2),
            attempt_aware=True,
        )
        engine = ExecutionEngine(
            registry,
            mode=ExecutionMode.STREAMED,
            resilience=ResilienceConfig(
                retry=RetryPolicy(attempts=8), partial_results=True
            ),
        )
        result = benchmark(lambda: engine.execute(plan, head=head, k=K))
        assert result.certificate is not None
        assert len(result.rows) == K
