"""Streaming early-exit top-k trajectory (``BENCH_streaming.json``).

Measures the streamed top-k pipeline against the two full-scan
executions on the same candidate plane, for k ∈ {1, 10, 100}:

* **full** — the reference full-plane :func:`execute_join` followed by
  ``compose_ranking(..., k)`` (the oracle of the hypothesis suite);
* **hashed** — PR 1's :func:`execute_join_hashed` + ``compose_ranking``
  (what the engine runs when not streaming);
* **streamed** — :class:`JoinStream`, which walks the plane lazily and
  suspends once the top-k is provably complete.

The workload is the paper's two-search-services shape: both inputs
emit tuples in their service rank order (rank = position), every cell
of the plane is a candidate combination, and the composed rank of cell
``(i, j)`` is ``i + j``.  The acceptance assertion is the whole point
of the subsystem: cells visited must scale with k, not with ``n × m``
— while the emitted rows stay bit-identical to the oracle.
"""

from __future__ import annotations

import json
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.execution.joins import (
    JoinStream,
    execute_join,
    execute_join_hashed,
)
from repro.execution.results import Row, compose_ranking
from repro.model.terms import Variable
from repro.services.registry import JoinMethod

pytestmark = pytest.mark.bench

SIDE = bench_scale(400, 120)
KS = (1, 10, 100)


def _inputs() -> tuple[list[Row], list[Row]]:
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    left = [
        Row(bindings={key: 0, left_var: i}, ranks=(("l", i),))
        for i in range(SIDE)
    ]
    right = [
        Row(bindings={key: 0, right_var: j}, ranks=(("r", j),))
        for j in range(SIDE)
    ]
    return left, right


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, max(time.perf_counter() - start, 1e-9)


def _full_scan(method, left, right, k) -> dict:
    rows, elapsed = _timed(
        lambda: compose_ranking(execute_join(method, left, right), k)
    )
    cells = len(left) * len(right)
    return {
        "rows": rows,
        "cells_visited": cells,
        "elapsed_s": round(elapsed, 6),
        "cells_per_s": round(cells / elapsed, 1),
        "tuples_per_s": round(len(rows) / elapsed, 1),
    }


def _hashed(method, left, right, k) -> dict:
    rows, elapsed = _timed(
        lambda: compose_ranking(execute_join_hashed(method, left, right), k)
    )
    return {
        "rows": rows,
        "elapsed_s": round(elapsed, 6),
        "tuples_per_s": round(len(rows) / elapsed, 1),
    }


def _streamed(method, left, right, k) -> dict:
    stream = JoinStream(method, left, right)
    rows, elapsed = _timed(lambda: stream.top(k))
    return {
        "rows": rows,
        "cells_visited": stream.cells_visited,
        "cells_skipped": stream.cells_skipped,
        "elapsed_s": round(elapsed, 6),
        "cells_per_s": round(stream.cells_visited / elapsed, 1),
        "tuples_per_s": round(len(rows) / elapsed, 1),
    }


def _strip(measurement: dict) -> dict:
    return {key: value for key, value in measurement.items() if key != "rows"}


class TestStreamingTrajectory:
    def test_write_bench_streaming(self, out_dir):
        left, right = _inputs()
        plane = SIDE * SIDE
        per_method: dict[str, dict] = {}
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            by_k: dict[str, dict] = {}
            visited_by_k: list[int] = []
            for k in KS:
                full = _full_scan(method, left, right, k)
                hashed = _hashed(method, left, right, k)
                streamed = _streamed(method, left, right, k)
                # Oracle equivalence: identical rows, ranks, and order.
                assert [(r.bindings, r.ranks) for r in streamed["rows"]] == [
                    (r.bindings, r.ranks) for r in full["rows"]
                ]
                assert [(r.bindings, r.ranks) for r in hashed["rows"]] == [
                    (r.bindings, r.ranks) for r in full["rows"]
                ]
                visited_by_k.append(streamed["cells_visited"])
                by_k[f"k={k}"] = {
                    "full": _strip(full),
                    "hashed": _strip(hashed),
                    "streamed": _strip(streamed),
                }
            # The acceptance property: cells visited grow with k and
            # stay far below the n*m plane for small k.
            assert visited_by_k == sorted(visited_by_k)
            for k, visited in zip(KS, visited_by_k):
                if k < SIDE:
                    assert visited < plane // 4, (method, k, visited, plane)
            if method is JoinMethod.MERGE_SCAN:
                # Diagonal stages: k=1 closes after a single cell.  (NL
                # stages are whole rows, so its floor is one row of m
                # cells — still independent of n.)
                assert visited_by_k[0] <= KS[0] * (KS[0] + 1)
            per_method[method.value] = by_k

        payload = {
            "bench": "streaming",
            "quick": QUICK,
            "workload": {
                "plane": f"{SIDE}x{SIDE} all-candidate plane, "
                "rank-monotone inputs (rank = position)",
                "k_values": list(KS),
                "oracle": "compose_ranking(execute_join(...), k), also "
                "cross-checked against execute_join_hashed",
            },
            "plane_cells": plane,
            "per_method": per_method,
        }
        (out_dir / bench_out_name("BENCH_streaming.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_bench_streamed_top_10(self, benchmark):
        left, right = _inputs()
        rows = benchmark(
            lambda: JoinStream(JoinMethod.MERGE_SCAN, left, right).top(10)
        )
        assert [(r.bindings, r.ranks) for r in rows] == [
            (r.bindings, r.ranks)
            for r in compose_ranking(
                execute_join(JoinMethod.MERGE_SCAN, left, right), 10
            )
        ]
