"""Optimizer scalability over synthetic workloads (ours).

The paper argues the three-phase space is "intractable by exact
methods, even with simple queries" and that branch-and-bound "could
find sufficiently good solutions in acceptable computation time"
(Section 2.4).  This benchmark quantifies both claims on generated
chain workloads of increasing size: plans completed, states pruned,
and wall time, with and without pruning.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.sources.synthetic import generate_workload

pytestmark = pytest.mark.bench

SIZES = (2, 3, 4)
ENRICHMENTS = 2  # lookup services that open up the topology space


def _optimize(workload, prune=True):
    return Optimizer(
        workload.registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=3, cache_setting=CacheSetting.ONE_CALL, prune=prune),
    ).optimize(workload.query)


class TestScalability:
    @pytest.mark.parametrize("size", SIZES)
    def test_bench_optimizer_by_size(self, benchmark, size):
        workload = generate_workload(
            n_services=size, seed=20 + size, enrichments=ENRICHMENTS
        )
        best = benchmark(_optimize, workload)
        assert best.plan.service_nodes

    def test_bench_pruning_off(self, benchmark, out_dir):
        workload = generate_workload(n_services=4, seed=24, enrichments=ENRICHMENTS)
        best = benchmark(_optimize, workload, False)
        assert best.plan.service_nodes
        self.test_write_scalability_table(out_dir)

    def test_write_scalability_table(self, out_dir):
        lines = [
            "Optimizer scalability on synthetic chain workloads (ETM, k=3)",
            "",
            f"{'atoms':<6} {'pruned search':<32} {'unpruned search':<32} "
            f"{'same cost':>9}",
        ]
        for size in SIZES:
            workload = generate_workload(
                n_services=size, seed=20 + size, enrichments=ENRICHMENTS
            )
            pruned = _optimize(workload, prune=True)
            unpruned = _optimize(workload, prune=False)
            assert pruned.cost == pytest.approx(unpruned.cost)
            assert (
                pruned.stats.plans_completed <= unpruned.stats.plans_completed
            )
            lines.append(
                f"{size:<6} "
                f"plans={pruned.stats.plans_completed:<4} "
                f"pruned={pruned.stats.topology_states_pruned:<5} "
                f"states={pruned.stats.topology_states_explored:<8} "
                f"plans={unpruned.stats.plans_completed:<4} "
                f"pruned={unpruned.stats.topology_states_pruned:<5} "
                f"states={unpruned.stats.topology_states_explored:<8} "
                f"{'yes':>9}"
            )
        write_artifact(out_dir, "scalability.txt", "\n".join(lines))
