"""Hot-path before/after throughput trajectory (``BENCH_hotpaths.json``).

Measures the two hot paths overhauled by the search-memoization +
execution fast-path subsystem and records a machine-readable
before/after trajectory so future PRs can track the perf curve:

* **optimizer states/sec** — branch-and-bound search over the Figure 7
  plan space (the running example), unmemoized ("before") vs. with the
  persistent :class:`~repro.optimizer.memo.PlanMemo` under a
  repeated-traffic workload ("after").  The memoized workload must
  also make at least 3x fewer ``annotate`` calls, witnessed by the
  ``SearchStats`` memo counters;
* **join tuples/sec** — candidate cells consumed per second by the
  reference full-plane :func:`~repro.execution.joins.execute_join`
  ("before") vs. the hash-partitioned
  :func:`~repro.execution.joins.execute_join_hashed` ("after") on a
  randomized plane, with identical output required.
"""

from __future__ import annotations

import json
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.joins import execute_join, execute_join_hashed
from repro.execution.results import Row
from repro.model.terms import Variable
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.services.registry import JoinMethod

pytestmark = pytest.mark.bench

#: Optimizations of the same query per workload: the repeated-traffic
#: scenario the memo targets (profiles stay put, queries repeat).
WORKLOAD_RUNS = 3

JOIN_SIDE = bench_scale(400, 80)
JOIN_KEYS = 40


def _optimizer_workload(registry, query, memoize: bool) -> dict:
    optimizer = Optimizer(
        registry, ExecutionTimeMetric(), OptimizerConfig(memoize=memoize)
    )
    states = 0
    annotate_calls = 0
    memo_hits = 0
    cost = None
    start = time.perf_counter()
    for _ in range(WORKLOAD_RUNS):
        result = optimizer.optimize(query)
        states += result.stats.topology_states_explored
        annotate_calls += result.stats.annotate_calls
        memo_hits += result.stats.memo_hits
        cost = result.cost
    elapsed = time.perf_counter() - start
    return {
        "runs": WORKLOAD_RUNS,
        "topology_states": states,
        "annotate_calls": annotate_calls,
        "memo_hits": memo_hits,
        "cost": cost,
        "elapsed_s": round(elapsed, 6),
        "states_per_s": round(states / elapsed, 1),
    }


def _join_inputs() -> tuple[list[Row], list[Row]]:
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    left = [
        Row(bindings={key: i % JOIN_KEYS, left_var: i}) for i in range(JOIN_SIDE)
    ]
    right = [
        Row(bindings={key: (j * 7) % JOIN_KEYS, right_var: j})
        for j in range(JOIN_SIDE)
    ]
    return left, right


def _join_throughput(join, method, left, right) -> dict:
    start = time.perf_counter()
    rows = join(method, left, right)
    elapsed = time.perf_counter() - start
    cells = len(left) * len(right)
    return {
        "plane_cells": cells,
        "rows_out": len(rows),
        "elapsed_s": round(elapsed, 6),
        "tuples_per_s": round(cells / elapsed, 1),
    }


class TestHotpathTrajectory:
    def test_write_bench_hotpaths(self, registry, travel_query, out_dir):
        before_opt = _optimizer_workload(registry, travel_query, memoize=False)
        after_opt = _optimizer_workload(registry, travel_query, memoize=True)
        assert after_opt["cost"] == before_opt["cost"]
        # Acceptance: >= 3x fewer annotate calls on the Figure 7 space.
        assert after_opt["annotate_calls"] * 3 <= before_opt["annotate_calls"]

        left, right = _join_inputs()
        joins = {}
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            before_join = _join_throughput(execute_join, method, left, right)
            after_join = _join_throughput(execute_join_hashed, method, left, right)
            assert after_join["rows_out"] == before_join["rows_out"]
            joins[method.value] = {"before": before_join, "after": after_join}

        payload = {
            "bench": "hotpaths",
            "quick": QUICK,
            "workload": {
                "optimizer": "Figure 7 plan space (running example), "
                f"{WORKLOAD_RUNS} repeated optimizations",
                "join": f"{JOIN_SIDE}x{JOIN_SIDE} plane, {JOIN_KEYS} join keys",
            },
            "optimizer_states_per_s": {"before": before_opt, "after": after_opt},
            "join_tuples_per_s": joins,
        }
        (out_dir / bench_out_name("BENCH_hotpaths.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_memoized_workload_matches_unmemoized(self, registry, travel_query):
        before = _optimizer_workload(registry, travel_query, memoize=False)
        after = _optimizer_workload(registry, travel_query, memoize=True)
        assert before["cost"] == after["cost"]
        assert before["topology_states"] == after["topology_states"]

    def test_bench_optimizer_memoized(self, benchmark, registry, travel_query):
        benchmark(_optimizer_workload, registry, travel_query, True)

    def test_bench_join_hashed(self, benchmark):
        left, right = _join_inputs()
        result = benchmark(
            execute_join_hashed, JoinMethod.MERGE_SCAN, left, right
        )
        assert result == execute_join(JoinMethod.MERGE_SCAN, left, right)
