"""Hot-path before/after throughput trajectory (``BENCH_hotpaths.json``).

Measures the two hot paths overhauled by the search-memoization +
execution fast-path subsystem and records a machine-readable
before/after trajectory so future PRs can track the perf curve:

* **optimizer states/sec** — branch-and-bound search over the Figure 7
  plan space (the running example), unmemoized ("before") vs. with the
  persistent :class:`~repro.optimizer.memo.PlanMemo` under a
  repeated-traffic workload ("after").  The memoized workload must
  also make at least 3x fewer ``annotate`` calls, witnessed by the
  ``SearchStats`` memo counters;
* **join tuples/sec** — candidate cells consumed per second by the
  reference full-plane :func:`~repro.execution.joins.execute_join`
  ("before") vs. the hash-partitioned
  :func:`~repro.execution.joins.execute_join_hashed` ("after") on a
  randomized plane, with identical output required;
* **slot-row plane sweep** — the hashed join with dict rows
  (``slot_rows=False``, "before") vs. slot-indexed rows ("after") on
  growing wide-row selective planes; identical output required at
  every size and ≥2x throughput at the largest plane (full runs);
* **multi-feed block sweep** — a heap-driven
  :class:`~repro.execution.lazy.MultiFeedCursor` over growing block
  counts (up to 1000 in full runs): a small demand must touch only a
  bounded prefix of blocks, fetch no more pages or tuples than eager
  materialization at every point, and stay bit-identical to the eager
  feed-order concatenation;
* **parallel worker sweep** — the multithreading plan (serial chain,
  Plan S) on a :class:`~repro.execution.parallel.ParallelExecutor`
  over a registry of *sleeping* service proxies, for growing worker
  counts; rows stay bit-identical to the sequential engine and wall
  time drops as workers grow (ordering asserted on full runs only).
"""

from __future__ import annotations

import json
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.execution.joins import execute_join, execute_join_hashed
from repro.execution.lazy import (
    LazyServiceCursor,
    ListPageSource,
    MultiFeedCursor,
)
from repro.execution.parallel import ParallelExecutor
from repro.execution.results import Row
from repro.model.predicates import BinaryExpression, Comparison
from repro.model.terms import Constant, Variable
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.builder import PlanBuilder
from repro.services.registry import JoinMethod
from repro.sources.travel import (
    alpha1_patterns,
    poset_serial,
    running_example_query,
    travel_registry,
)

pytestmark = pytest.mark.bench

#: Optimizations of the same query per workload: the repeated-traffic
#: scenario the memo targets (profiles stay put, queries repeat).
WORKLOAD_RUNS = 3

JOIN_SIDE = bench_scale(400, 80)
JOIN_KEYS = 40

#: Slot-row plane sweep: wide rows (6 payload variables a side) and a
#: selective residual predicate — the shape where per-candidate dict
#: merges dominate and slot-indexed tuples pay off.
PLANE_SIDES = (60, 120) if QUICK else (200, 400, 800)
PLANE_KEYS = 10
PLANE_WIDTH = 6

#: Multi-feed block sweep (heap-driven MultiFeedCursor).
BLOCK_COUNTS = (40, 120) if QUICK else (100, 400, 1000)
BLOCK_CHUNK = 2
BLOCK_ROWS = 3
BLOCK_DEMAND = 10

#: Parallel worker sweep: real seconds slept per virtual latency unit.
WORKER_COUNTS = (1, 2, 4)
SLEEP_SCALE = 0.0005 if QUICK else 0.002


def _optimizer_workload(registry, query, memoize: bool) -> dict:
    optimizer = Optimizer(
        registry, ExecutionTimeMetric(), OptimizerConfig(memoize=memoize)
    )
    states = 0
    annotate_calls = 0
    memo_hits = 0
    cost = None
    start = time.perf_counter()
    for _ in range(WORKLOAD_RUNS):
        result = optimizer.optimize(query)
        states += result.stats.topology_states_explored
        annotate_calls += result.stats.annotate_calls
        memo_hits += result.stats.memo_hits
        cost = result.cost
    elapsed = time.perf_counter() - start
    return {
        "runs": WORKLOAD_RUNS,
        "topology_states": states,
        "annotate_calls": annotate_calls,
        "memo_hits": memo_hits,
        "cost": cost,
        "elapsed_s": round(elapsed, 6),
        "states_per_s": round(states / elapsed, 1),
    }


def _join_inputs() -> tuple[list[Row], list[Row]]:
    key, left_var, right_var = Variable("K"), Variable("L"), Variable("R")
    left = [
        Row(bindings={key: i % JOIN_KEYS, left_var: i}) for i in range(JOIN_SIDE)
    ]
    right = [
        Row(bindings={key: (j * 7) % JOIN_KEYS, right_var: j})
        for j in range(JOIN_SIDE)
    ]
    return left, right


def _join_throughput(join, method, left, right) -> dict:
    start = time.perf_counter()
    rows = join(method, left, right)
    elapsed = time.perf_counter() - start
    cells = len(left) * len(right)
    return {
        "plane_cells": cells,
        "rows_out": len(rows),
        "elapsed_s": round(elapsed, 6),
        "tuples_per_s": round(cells / elapsed, 1),
    }


def _row_signature(rows):
    return [(dict(r.bindings), r.ranks) for r in rows]


# -- slot-row plane sweep ------------------------------------------------


def _plane_inputs(side: int) -> tuple[list[Row], list[Row], Comparison]:
    key = Variable("K")
    left_vars = [Variable(f"L{i}") for i in range(PLANE_WIDTH)]
    right_vars = [Variable(f"R{i}") for i in range(PLANE_WIDTH)]
    left = [
        Row(
            bindings={key: i % PLANE_KEYS,
                      **{v: i + n for n, v in enumerate(left_vars)}},
            ranks=(("L", i % 13),),
        )
        for i in range(side)
    ]
    right = [
        Row(
            bindings={key: (j * 7) % PLANE_KEYS,
                      **{v: j + n for n, v in enumerate(right_vars)}},
            ranks=(("R", j % 11),),
        )
        for j in range(side)
    ]
    predicate = Comparison(
        BinaryExpression("+", left_vars[0], right_vars[0]), "<", Constant(12)
    )
    return left, right, predicate


def _slot_plane_point(side: int) -> dict:
    left, right, predicate = _plane_inputs(side)
    cells = side * side
    point: dict = {"side": side, "plane_cells": cells}
    signatures = {}
    for label, slot_rows in (("before", False), ("after", True)):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            rows = execute_join_hashed(
                JoinMethod.MERGE_SCAN, left, right, (predicate,),
                slot_rows=slot_rows,
            )
            best = min(best, time.perf_counter() - start)
        signatures[label] = _row_signature(rows)
        point[label] = {
            "rows_out": len(rows),
            "elapsed_s": round(best, 6),
            "tuples_per_s": round(cells / best, 1),
        }
    # Bit-identity between the dict oracle and the slot path, always.
    assert signatures["after"] == signatures["before"]
    point["speedup"] = round(
        point["before"]["elapsed_s"] / point["after"]["elapsed_s"], 2
    )
    return point


# -- multi-feed block sweep ----------------------------------------------


def _block_cursor(count: int) -> tuple[MultiFeedCursor, list[Row], int]:
    """A cursor over *count* blocks with rising base ranks, plus the
    eager feed-order concatenation and its page-fetch total."""
    key, value = Variable("K"), Variable("V")
    cursors: list[LazyServiceCursor] = []
    eager: list[Row] = []
    eager_pages = 0
    for block in range(count):
        base = block
        ranks = [base + offset for offset in range(BLOCK_ROWS)]
        rows = [
            Row(
                bindings={key: 0, value: (block, index)},
                ranks=((f"feed{block}", base), ("svc", rank)),
            )
            for index, rank in enumerate(ranks)
        ]
        eager.extend(rows)
        pages = [
            rows[i : i + BLOCK_CHUNK] for i in range(0, len(rows), BLOCK_CHUNK)
        ] or [[]]
        eager_pages += len(pages)
        floors: list[int] = []
        seen = 0
        for page in pages:
            seen += len(page)
            floors.append(ranks[seen] if seen < len(ranks) else 10**9)
        cursors.append(
            LazyServiceCursor(
                ListPageSource(pages=pages, rank_floors=floors), base_rank=base
            )
        )
    return MultiFeedCursor(cursors), eager, eager_pages


def _block_sweep_point(count: int) -> dict:
    cursor, eager, eager_pages = _block_cursor(count)
    start = time.perf_counter()
    cursor.ensure(BLOCK_DEMAND)
    elapsed = time.perf_counter() - start
    lazy_pages = sum(b.pages_fetched for b in cursor._blocks)
    # Laziness bounds, asserted at every point (quick runs included):
    # the demand-driven pulls never exceed the eager universe.
    assert lazy_pages <= eager_pages
    assert cursor.tuples_fetched <= len(eager)
    # ... and the placed prefix is bit-identical to eager order.
    assert _row_signature(cursor.rows) == _row_signature(
        eager[: len(cursor.rows)]
    )
    point = {
        "blocks": count,
        "demand": BLOCK_DEMAND,
        "ensure_elapsed_s": round(elapsed, 6),
        "pages_fetched": lazy_pages,
        "eager_pages": eager_pages,
        "tuples_fetched": cursor.tuples_fetched,
        "eager_tuples": len(eager),
        "blocks_untouched": cursor.blocks_untouched,
    }
    cursor.ensure_all()
    assert _row_signature(cursor.rows) == _row_signature(eager)
    return point


# -- parallel worker sweep -----------------------------------------------


class _SleepingService:
    """Delegating proxy that really sleeps for each invocation.

    The travel services only *report* latencies (the engine advances a
    virtual clock); the worker sweep needs physical time for threads to
    overlap, so each call sleeps its reported latency scaled down to
    bench-friendly real seconds.
    """

    def __init__(self, inner, scale: float) -> None:
        self._inner = inner
        self._scale = scale

    def invoke(self, pattern, inputs, page=0):
        result = self._inner.invoke(pattern, inputs, page)
        time.sleep(result.latency * self._scale)
        return result

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _sleeping_registry(scale: float):
    registry = travel_registry()
    for name in registry.names:
        registry._services[name] = _SleepingService(
            registry._services[name], scale
        )
    return registry


def _worker_sweep() -> dict:
    query = running_example_query()
    plan = PlanBuilder(query, travel_registry()).build(
        alpha1_patterns(), poset_serial()
    )
    oracle = ExecutionEngine(
        travel_registry(), mode=ExecutionMode.PARALLEL
    ).execute(plan, query.head)
    oracle_signature = _row_signature(oracle.rows)
    points = []
    for workers in WORKER_COUNTS:
        result = ParallelExecutor(
            _sleeping_registry(SLEEP_SCALE), workers=workers
        ).execute(plan, query.head)
        # Bit-identical to sequential execution at every worker count.
        assert _row_signature(result.rows) == oracle_signature
        assert result.stats.total_calls == oracle.stats.total_calls
        points.append(
            {
                "workers": workers,
                "wall_time_s": round(result.stats.wall_time, 6),
                "virtual_elapsed_s": round(result.stats.elapsed, 3),
                "service_calls": result.stats.total_calls,
            }
        )
    if not QUICK:
        # Parallel branch execution beats serial on the serial chain.
        assert points[-1]["wall_time_s"] < points[0]["wall_time_s"]
    return {
        "plan": "serial chain (Plan S), multithreading experiment",
        "sleep_scale": SLEEP_SCALE,
        "points": points,
    }


class TestHotpathTrajectory:
    def test_write_bench_hotpaths(self, registry, travel_query, out_dir):
        before_opt = _optimizer_workload(registry, travel_query, memoize=False)
        after_opt = _optimizer_workload(registry, travel_query, memoize=True)
        assert after_opt["cost"] == before_opt["cost"]
        # Acceptance: >= 3x fewer annotate calls on the Figure 7 space.
        assert after_opt["annotate_calls"] * 3 <= before_opt["annotate_calls"]

        left, right = _join_inputs()
        joins = {}
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            before_join = _join_throughput(execute_join, method, left, right)
            after_join = _join_throughput(execute_join_hashed, method, left, right)
            assert after_join["rows_out"] == before_join["rows_out"]
            joins[method.value] = {"before": before_join, "after": after_join}

        plane_points = [_slot_plane_point(side) for side in PLANE_SIDES]
        if not QUICK:
            # Acceptance: >= 2x join throughput from slot-indexed rows
            # on the largest wide-row selective plane.
            assert plane_points[-1]["speedup"] >= 2.0

        block_points = [_block_sweep_point(count) for count in BLOCK_COUNTS]

        payload = {
            "bench": "hotpaths",
            "quick": QUICK,
            "workload": {
                "optimizer": "Figure 7 plan space (running example), "
                f"{WORKLOAD_RUNS} repeated optimizations",
                "join": f"{JOIN_SIDE}x{JOIN_SIDE} plane, {JOIN_KEYS} join keys",
                "slot_plane": f"wide-row selective planes {PLANE_SIDES}, "
                f"{PLANE_KEYS} keys, {PLANE_WIDTH} payload vars/side",
                "multi_feed": f"block counts {BLOCK_COUNTS}, "
                f"{BLOCK_ROWS} rows/block, chunk {BLOCK_CHUNK}, "
                f"demand {BLOCK_DEMAND}",
            },
            "optimizer_states_per_s": {"before": before_opt, "after": after_opt},
            "join_tuples_per_s": joins,
            "slot_join_plane_sweep": plane_points,
            "multi_feed_block_sweep": block_points,
            "parallel_worker_sweep": _worker_sweep(),
        }
        (out_dir / bench_out_name("BENCH_hotpaths.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_memoized_workload_matches_unmemoized(self, registry, travel_query):
        before = _optimizer_workload(registry, travel_query, memoize=False)
        after = _optimizer_workload(registry, travel_query, memoize=True)
        assert before["cost"] == after["cost"]
        assert before["topology_states"] == after["topology_states"]

    def test_bench_optimizer_memoized(self, benchmark, registry, travel_query):
        benchmark(_optimizer_workload, registry, travel_query, True)

    def test_bench_join_hashed(self, benchmark):
        left, right = _join_inputs()
        result = benchmark(
            execute_join_hashed, JoinMethod.MERGE_SCAN, left, right
        )
        assert result == execute_join(JoinMethod.MERGE_SCAN, left, right)
