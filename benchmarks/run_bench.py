#!/usr/bin/env python
"""Run the benchmark suite that tier-1 test runs exclude.

Tier-1 (`PYTHONPATH=src python -m pytest -x -q`) deselects everything
marked ``bench`` so the edit-test loop stays fast; CI and developers
run the benches explicitly through this entry point::

    python benchmarks/run_bench.py                 # all benchmarks
    python benchmarks/run_bench.py -k hotpaths     # one bench module
    python benchmarks/run_bench.py --benchmark-only
    python benchmarks/run_bench.py -k hotpaths --quick   # CI smoke
    python benchmarks/run_bench.py -k hotpaths --profile # + cProfile
    python benchmarks/run_bench.py --list          # enumerate suites

``--quick`` shrinks the workload sizes (via the ``BENCH_QUICK``
environment variable, read by ``benchmarks/conftest.py``'s
``bench_scale``) so CI can smoke-test that the bench code still runs
without paying the full measurement cost; quick runs exercise the same
assertions but their timings are not comparable to full runs.

``--profile`` wraps the selected scenario in :mod:`cProfile` (pytest
runs in-process instead of a subprocess so the profiler sees the bench
code) and writes the top 25 functions by cumulative time to
``benchmarks/out/profile_<scenario>.txt``, where ``<scenario>`` is the
``-k`` selection (``all`` when none is given).  Profiled timings carry
instrumentation overhead — use them to find hot functions, not as the
recorded trajectory numbers.

Regenerated artifacts (paper tables/figures and the
``BENCH_*.json`` perf trajectories) land in ``benchmarks/out/``.
Extra arguments are forwarded to pytest verbatim.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_ARTIFACT = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")


def list_suites() -> int:
    """Print every bench suite with the artifacts it writes."""
    bench_dir = REPO_ROOT / "benchmarks"
    print(f"{'suite':<18} {'module':<34} writes")
    for module in sorted(bench_dir.glob("test_bench_*.py")):
        suite = module.stem.removeprefix("test_bench_")
        artifacts = sorted(set(_ARTIFACT.findall(module.read_text())))
        print(
            f"{suite:<18} {module.relative_to(REPO_ROOT)!s:<34} "
            f"{', '.join(artifacts) if artifacts else '-'}"
        )
    print(
        f"\nartifacts land in benchmarks/out/; run one suite with "
        f"`python benchmarks/run_bench.py -k <suite>` "
        f"(add --quick for the CI smoke workload)"
    )
    return 0


def scenario_name(argv: list[str]) -> str:
    """The ``-k`` selection naming the profiled scenario (``all`` if none)."""
    for index, arg in enumerate(argv):
        if arg == "-k" and index + 1 < len(argv):
            return re.sub(r"[^A-Za-z0-9_]+", "_", argv[index + 1])
        if arg.startswith("-k"):
            return re.sub(r"[^A-Za-z0-9_]+", "_", arg[2:])
    return "all"


def run_profiled(pytest_args: list[str], scenario: str) -> int:
    """Run pytest in-process under cProfile; write the top-25 report."""
    import cProfile
    import io
    import pstats

    import pytest

    # Replicate the subprocess environment: src/ on the path for
    # ``repro`` and the repo root for ``benchmarks.conftest``.
    for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    os.chdir(REPO_ROOT)
    profiler = cProfile.Profile()
    profiler.enable()
    code = pytest.main(pytest_args)
    profiler.disable()
    out_dir = REPO_ROOT / "benchmarks" / "out"
    out_dir.mkdir(exist_ok=True)
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    path = out_dir / f"profile_{scenario}.txt"
    path.write_text(stream.getvalue())
    print(f"profile written to {path.relative_to(REPO_ROOT)}")
    return int(code)


def main(argv: list[str]) -> int:
    if "--list" in argv:
        return list_suites()
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    argv = list(argv)
    if "--quick" in argv:
        argv = [a for a in argv if a != "--quick"]
        env["BENCH_QUICK"] = "1"
        os.environ["BENCH_QUICK"] = "1"  # for the in-process --profile path
    profile = "--profile" in argv
    if profile:
        argv = [a for a in argv if a != "--profile"]
    pytest_args = [
        str(REPO_ROOT / "benchmarks"),
        # The command line overrides the tier-1 `-m "not bench"` addopts.
        "-m",
        "bench",
        "-q",
        *argv,
    ]
    if profile:
        # pytest-benchmark pauses instrumentation around its timed
        # rounds in a way cProfile's C-level profiler cannot survive
        # (and profiled timings are not measurements anyway), so the
        # benchmark fixture runs its function exactly once.
        pytest_args.append("--benchmark-disable")
        return run_profiled(pytest_args, scenario_name(argv))
    command = [sys.executable, "-m", "pytest", *pytest_args]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
