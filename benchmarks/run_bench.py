#!/usr/bin/env python
"""Run the benchmark suite that tier-1 test runs exclude.

Tier-1 (`PYTHONPATH=src python -m pytest -x -q`) deselects everything
marked ``bench`` so the edit-test loop stays fast; CI and developers
run the benches explicitly through this entry point::

    python benchmarks/run_bench.py                 # all benchmarks
    python benchmarks/run_bench.py -k hotpaths     # one bench module
    python benchmarks/run_bench.py --benchmark-only

Regenerated artifacts (paper tables/figures and the
``BENCH_hotpaths.json`` perf trajectory) land in ``benchmarks/out/``.
Extra arguments are forwarded to pytest verbatim.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv: list[str]) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        # The command line overrides the tier-1 `-m "not bench"` addopts.
        "-m",
        "bench",
        "-q",
        *argv,
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
