#!/usr/bin/env python
"""Run the benchmark suite that tier-1 test runs exclude.

Tier-1 (`PYTHONPATH=src python -m pytest -x -q`) deselects everything
marked ``bench`` so the edit-test loop stays fast; CI and developers
run the benches explicitly through this entry point::

    python benchmarks/run_bench.py                 # all benchmarks
    python benchmarks/run_bench.py -k hotpaths     # one bench module
    python benchmarks/run_bench.py --benchmark-only
    python benchmarks/run_bench.py -k hotpaths --quick   # CI smoke
    python benchmarks/run_bench.py --list          # enumerate suites

``--quick`` shrinks the workload sizes (via the ``BENCH_QUICK``
environment variable, read by ``benchmarks/conftest.py``'s
``bench_scale``) so CI can smoke-test that the bench code still runs
without paying the full measurement cost; quick runs exercise the same
assertions but their timings are not comparable to full runs.

Regenerated artifacts (paper tables/figures and the
``BENCH_*.json`` perf trajectories) land in ``benchmarks/out/``.
Extra arguments are forwarded to pytest verbatim.
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_ARTIFACT = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")


def list_suites() -> int:
    """Print every bench suite with the artifacts it writes."""
    bench_dir = REPO_ROOT / "benchmarks"
    print(f"{'suite':<18} {'module':<34} writes")
    for module in sorted(bench_dir.glob("test_bench_*.py")):
        suite = module.stem.removeprefix("test_bench_")
        artifacts = sorted(set(_ARTIFACT.findall(module.read_text())))
        print(
            f"{suite:<18} {module.relative_to(REPO_ROOT)!s:<34} "
            f"{', '.join(artifacts) if artifacts else '-'}"
        )
    print(
        f"\nartifacts land in benchmarks/out/; run one suite with "
        f"`python benchmarks/run_bench.py -k <suite>` "
        f"(add --quick for the CI smoke workload)"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--list" in argv:
        return list_suites()
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    argv = list(argv)
    if "--quick" in argv:
        argv = [a for a in argv if a != "--quick"]
        env["BENCH_QUICK"] = "1"
    command = [
        sys.executable,
        "-m",
        "pytest",
        str(REPO_ROOT / "benchmarks"),
        # The command line overrides the tier-1 `-m "not bench"` addopts.
        "-m",
        "bench",
        "-q",
        *argv,
    ]
    return subprocess.call(command, cwd=REPO_ROOT, env=env)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
