"""Persistent indexed backends trajectory (``BENCH_backends.json``).

Runs the bibliographic experts query over the same generated corpus
served from three service backends — ``memory`` (Python list scan +
sort per invocation), ``sqlite`` (B-tree index scans,
:mod:`repro.services.sqlite`), ``fts5`` (BM25 full-text index) — at
1k / 10k / 100k papers, and measures what the indexed backends were
built to change:

* **first-page latency** — wall time of one cold
  ``pubsearch(keyword)`` page-0 invocation.  The in-memory search
  service re-scans and re-sorts every matching row per invocation
  (O(n log n) in the match count); the indexed backends answer from
  one forward index scan (O(chunk)), so their latency stays flat as
  the corpus grows;
* **load time** — building the backend from the corpus (the indexed
  backends pay an indexing cost up front, amortized over every later
  invocation);
* **end-to-end plan cost** — wall time and service-call accounting of
  a full top-k execution, with the memory and sqlite backends checked
  **bit-identical** (bindings + rank values) at every scale;
* **fetches ∝ k, not table size** — on the sqlite backend, a
  demand-bounded streamed run (the optimizer's own fetch factors,
  early exit once top-k is proven) is compared against a full-drain
  client whose ``pubsearch`` budget is raised toward the match count
  (capped): demand-side tuple counts must stay flat from the smallest
  to the largest corpus while the drain counts grow with it — the
  indexed store serves ``O(k)`` pages either way, so only the access
  *policy* scales the bill.
"""

from __future__ import annotations

import json
import time

import pytest
from _bench_env import QUICK, bench_out_name

from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.services.sqlite import fts5_available
from repro.sources.biblio import PUBSEARCH_CHUNK, biblio_registry, experts_query, generate_corpus

pytestmark = pytest.mark.bench

SCALES = (300, 1_000) if QUICK else (1_000, 10_000, 100_000)
K = 10
SEED = 20080824
KEYWORD = "service computing"
#: Cap on the raised pubsearch drain budget (pages); keeps the eager
#: baseline tractable at 100k while still growing with the corpus.
BUDGET_CAP = 30 if QUICK else 300

BACKENDS = ("memory", "sqlite", "fts5") if fts5_available() else (
    "memory", "sqlite"
)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, max(time.perf_counter() - start, 1e-9)


def _optimized(registry, query):
    return Optimizer(
        registry, ExecutionTimeMetric(), OptimizerConfig(k=K)
    ).optimize(query).plan


def _signature_of(rows):
    """Cross-registry row identity: bindings + rank values (labels are
    registry/plan-local gensyms)."""
    return [
        (sorted((v.name, value) for v, value in row.bindings.items()),
         tuple(rank for _, rank in row.ranks))
        for row in rows
    ]


def _first_page_ms(registry) -> float:
    service = registry.service("pubsearch")
    pattern = service.signature.pattern("iooo")
    _, elapsed = _timed(lambda: service.invoke(pattern, {0: KEYWORD}, 0))
    return round(elapsed * 1000, 4)


def _run_backend(backend: str, corpus) -> tuple[dict, list]:
    registry, load_s = _timed(
        lambda: biblio_registry(backend=backend, corpus=corpus)
    )
    first_page_ms = _first_page_ms(registry)
    query = experts_query()
    plan = _optimized(registry, query)
    engine = ExecutionEngine(registry, mode=ExecutionMode.PARALLEL)
    result, run_s = _timed(lambda: engine.execute(plan, head=query.head, k=K))
    stats = result.stats
    return (
        {
            "load_s": round(load_s, 4),
            "first_page_ms": first_page_ms,
            "plan_wall_s": round(run_s, 4),
            "answers": len(result.rows),
            "service_calls": stats.total_calls,
            "page_fetches": stats.total_fetches,
            "tuples_fetched": stats.total_tuples_fetched,
        },
        _signature_of(result.rows),
    )


def _demand_vs_drain(corpus, n_papers: int) -> dict:
    """Demand-bounded vs full-drain fetch counts on the sqlite backend.

    The *demand* run is the streamed engine with the optimizer's own
    fetch factors: it stops pulling pubsearch pages (and the authors /
    projects lookups they seed) once the top-k is proven.  The *drain*
    run models a fetch-everything client: the pubsearch budget is
    raised toward the full match count (capped at BUDGET_CAP pages)
    and eagerly materialized.  Over the same indexed store, demand
    counts must track k while drain counts track the table.
    """
    matches = sum(1 for row in corpus[0] if row[0] == KEYWORD)
    budget = min(-(-matches // PUBSEARCH_CHUNK), BUDGET_CAP)
    measurements = {}
    for label, drain in (("full_drain", True), ("demand_streamed", False)):
        registry = biblio_registry(backend="sqlite", corpus=corpus)
        query = experts_query()
        plan = _optimized(registry, query)
        if drain:
            for node in plan.chunked_service_nodes:
                if node.service_name == "pubsearch":
                    node.fetches = max(node.fetches, budget)
        engine = ExecutionEngine(
            registry, mode=ExecutionMode.STREAMED, lazy_streaming=not drain
        )
        result, wall_s = _timed(
            lambda: engine.execute(plan, head=query.head, k=K)
        )
        stats = result.stats
        measurements[label] = {
            "rows": _signature_of(result.rows),
            "page_fetches": stats.total_fetches,
            "tuples_fetched": stats.total_tuples_fetched,
            "service_calls": stats.total_calls,
            "wall_s": round(wall_s, 4),
        }
    drain_run = measurements["full_drain"]
    demand_run = measurements["demand_streamed"]
    # Same top-k either way: draining the budget adds no answers.
    assert demand_run.pop("rows") == drain_run.pop("rows")
    assert demand_run["tuples_fetched"] <= drain_run["tuples_fetched"]
    return {
        "papers": n_papers,
        "pubsearch_matches": matches,
        "drain_budget_pages": budget,
        "full_drain": drain_run,
        "demand_streamed": demand_run,
    }


class TestBackendTrajectory:
    def test_write_bench_backends(self, out_dir):
        per_scale: dict[str, dict] = {}
        lazy_rows: list[dict] = []
        for n_papers in SCALES:
            corpus = generate_corpus(n_papers, seed=SEED)
            by_backend: dict[str, dict] = {}
            signatures: dict[str, list] = {}
            for backend in BACKENDS:
                by_backend[backend], signatures[backend] = _run_backend(
                    backend, corpus
                )
            # The indexed relational backend is bit-identical to the
            # in-memory oracle at every scale; FTS5 ranks differently
            # (BM25) but must produce answers from the same corpus.
            assert signatures["memory"] == signatures["sqlite"]
            assert by_backend["memory"]["answers"] > 0
            if "fts5" in by_backend:
                assert by_backend["fts5"]["answers"] > 0
            lazy_rows.append(_demand_vs_drain(corpus, n_papers))
            per_scale[f"papers={n_papers}"] = by_backend

        # The acceptance property: demand-bounded fetching scales with
        # k, not with the corpus — flat demand counts while the full
        # drain grows with the table.
        smallest, largest = lazy_rows[0], lazy_rows[-1]
        assert largest["demand_streamed"]["tuples_fetched"] <= (
            2 * smallest["demand_streamed"]["tuples_fetched"] + PUBSEARCH_CHUNK
        )
        if largest["drain_budget_pages"] > smallest["drain_budget_pages"]:
            assert largest["full_drain"]["tuples_fetched"] > (
                smallest["full_drain"]["tuples_fetched"]
            )
        assert largest["demand_streamed"]["tuples_fetched"] < (
            largest["full_drain"]["tuples_fetched"]
        )

        payload = {
            "bench": "backends",
            "quick": QUICK,
            "workload": {
                "query": "biblio experts (pubsearch ⋈ authors ⋈ projects)",
                "keyword": KEYWORD,
                "k": K,
                "scales_papers": list(SCALES),
                "backends": list(BACKENDS),
                "corpus_seed": SEED,
                "notes": "memory re-sorts matches per invocation; sqlite "
                "pages via (inputs, score DESC, pos) index scans; fts5 "
                "ranks via BM25 (ORDER BY rank, rowid)",
            },
            "per_scale": per_scale,
            "demand_vs_drain_sqlite": lazy_rows,
        }
        (out_dir / bench_out_name("BENCH_backends.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
