"""Figure 1 — the three-phase optimization funnel, plus B&B efficiency.

Benchmarks the optimizer itself: the branch-and-bound search must find
the same optimum as exhaustive enumeration while completing fewer
plans, and the phase-level statistics regenerate the funnel of
Figure 1 (pattern sequences → topologies → fully instantiated plans).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.baselines.exhaustive import exhaustive_optimize
from repro.costs.sum_cost import RequestResponseMetric
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.optimizer import Optimizer, OptimizerConfig

pytestmark = pytest.mark.bench

K = 10


def _optimize(registry, travel_query, prune=True):
    optimizer = Optimizer(
        registry,
        ExecutionTimeMetric(),
        OptimizerConfig(k=K, cache_setting=CacheSetting.ONE_CALL, prune=prune),
    )
    return optimizer.optimize(travel_query)


class TestOptimizerBenchmarks:
    def test_bench_branch_and_bound(
        self, benchmark, registry, travel_query, out_dir
    ):
        best = benchmark(_optimize, registry, travel_query)
        assert best.expected_answers >= K
        TestBnbQuality().test_funnel_statistics(registry, travel_query, out_dir)

    def test_bench_exhaustive(self, benchmark, registry, travel_query):
        best = benchmark(
            exhaustive_optimize, travel_query, registry,
            ExecutionTimeMetric(), K,
        )
        assert best.expected_answers >= K

    def test_bench_bio_domain_optimization(self, benchmark):
        from repro.sources.bio import bio_registry, glycolysis_homolog_query

        registry = bio_registry()
        query = glycolysis_homolog_query()

        def run():
            return Optimizer(
                registry, ExecutionTimeMetric(), OptimizerConfig(k=5)
            ).optimize(query)

        best = benchmark(run)
        assert best.expected_answers >= 5


class TestBnbQuality:
    def test_bnb_matches_exhaustive_optimum(self, registry, travel_query):
        bnb = _optimize(registry, travel_query)
        oracle = exhaustive_optimize(
            travel_query, registry, ExecutionTimeMetric(), K,
            cache_setting=CacheSetting.ONE_CALL,
        )
        assert bnb.cost == pytest.approx(oracle.cost)

    def test_funnel_statistics(self, registry, travel_query, out_dir):
        pruned = _optimize(registry, travel_query, prune=True)
        unpruned = _optimize(registry, travel_query, prune=False)
        oracle = exhaustive_optimize(
            travel_query, registry, ExecutionTimeMetric(), K,
            cache_setting=CacheSetting.ONE_CALL,
        )
        assert pruned.stats.plans_completed <= unpruned.stats.plans_completed

        rr = Optimizer(
            registry, RequestResponseMetric(),
            OptimizerConfig(k=K, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)

        lines = [
            "Figure 1 — optimization funnel of the running example",
            "",
            "Branch-and-bound (ETM):",
            f"  {pruned.stats.summary()}",
            f"  optimum cost {pruned.cost:.1f}, plan {pruned.describe()}",
            "",
            "Without pruning:",
            f"  {unpruned.stats.summary()}",
            "",
            "Exhaustive oracle:",
            f"  {oracle.stats.summary()}",
            f"  optimum cost {oracle.cost:.1f} (identical optimum)",
            "",
            "Request-response metric picks a more sequential plan:",
            f"  {rr.describe()}",
        ]
        write_artifact(out_dir, "figure1_phases.txt", "\n".join(lines))
