"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper figure — these quantify the contribution of each mechanism:

* greedy vs square fetch heuristics vs the exhaustive exploration;
* NL vs MS join strategies on ranked inputs (time-to-first-k proxy);
* the "bound is better" phase-1 restriction (most cogent only);
* the WSMS chain baseline charged with the fetches it actually needs.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.baselines.wsms import wsms_optimize
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.joins import execute_join
from repro.execution.results import Row
from repro.model.terms import Variable
from repro.optimizer.fetches import (
    FetchContext,
    exhaustive_assignment,
    greedy_assignment,
    square_assignment,
)
from repro.optimizer.optimizer import Optimizer, OptimizerConfig
from repro.plans.builder import PlanBuilder
from repro.services.registry import JoinMethod
from repro.sources.travel import alpha1_patterns, poset_optimal

pytestmark = pytest.mark.bench

K = 10


class TestFetchHeuristicAblation:
    @pytest.fixture()
    def context(self, registry, travel_query):
        plan = PlanBuilder(travel_query, registry).build(
            alpha1_patterns(), poset_optimal()
        )
        return FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)

    def test_bench_greedy(self, benchmark, context):
        result = benchmark(greedy_assignment, context, K)
        assert result.feasible

    def test_bench_square(self, benchmark, context):
        result = benchmark(square_assignment, context, K)
        assert result.feasible

    def test_bench_exhaustive(self, benchmark, context, out_dir):
        result = benchmark(exhaustive_assignment, context, K)
        assert result.feasible
        self.test_heuristic_gap(context, out_dir)

    def test_heuristic_gap(self, context, out_dir):
        greedy = greedy_assignment(context, K)
        square = square_assignment(context, K)
        best = exhaustive_assignment(context, K)
        assert best.cost <= min(greedy.cost, square.cost) + 1e-9
        lines = [
            f"Fetch heuristic ablation (plan O, ETM, k={K})",
            "",
            f"{'strategy':<12} {'fetches':<18} {'h':>7} {'cost':>8}",
            f"{'greedy':<12} {str(greedy.fetches):<18} {greedy.output_size:>7.2f} {greedy.cost:>8.1f}",
            f"{'square':<12} {str(square.fetches):<18} {square.output_size:>7.2f} {square.cost:>8.1f}",
            f"{'exhaustive':<12} {str(best.fetches):<18} {best.output_size:>7.2f} {best.cost:>8.1f}",
        ]
        write_artifact(out_dir, "ablation_fetch_heuristics.txt", "\n".join(lines))


class TestJoinStrategyAblation:
    @staticmethod
    def _streams(n):
        left = [
            Row(bindings={Variable("K"): i % 4, Variable("L"): i})
            for i in range(n)
        ]
        right = [
            Row(bindings={Variable("K"): i % 4, Variable("R"): i})
            for i in range(n)
        ]
        return left, right

    def test_bench_nested_loop(self, benchmark):
        left, right = self._streams(60)
        result = benchmark(execute_join, JoinMethod.NESTED_LOOP, left, right)
        assert result

    def test_bench_merge_scan(self, benchmark, out_dir):
        left, right = self._streams(60)
        result = benchmark(execute_join, JoinMethod.MERGE_SCAN, left, right)
        assert result
        self.test_merge_scan_balances_top_results(out_dir)

    def test_merge_scan_balances_top_results(self, out_dir):
        """Among the first matches, MS draws from both inputs'
        prefixes while NL exhausts the outer side first — the reason MS
        suits two services with comparable rankings (Figure 5)."""
        left, right = self._streams(40)
        top = 20
        summaries = {}
        for method in (JoinMethod.NESTED_LOOP, JoinMethod.MERGE_SCAN):
            produced = execute_join(method, left, right)[:top]
            max_left = max(row.bindings[Variable("L")] for row in produced)
            max_right = max(row.bindings[Variable("R")] for row in produced)
            summaries[method.value] = (max_left, max_right)
        nl_left, nl_right = summaries["NL"]
        ms_left, ms_right = summaries["MS"]
        assert abs(ms_left - ms_right) <= abs(nl_left - nl_right)
        lines = [
            "Join strategy ablation: depth of each input consumed for the",
            f"first {top} join results (lower and balanced is better for",
            "rankings of comparable quality)",
            "",
            f"{'method':<6} {'left depth':>11} {'right depth':>12}",
            f"{'NL':<6} {nl_left:>11} {nl_right:>12}",
            f"{'MS':<6} {ms_left:>11} {ms_right:>12}",
        ]
        write_artifact(out_dir, "ablation_join_strategies.txt", "\n".join(lines))


class TestPhase1Ablation:
    def test_most_cogent_restriction(self, registry, travel_query, out_dir):
        full = Optimizer(
            registry, ExecutionTimeMetric(),
            OptimizerConfig(k=K, cache_setting=CacheSetting.ONE_CALL),
        ).optimize(travel_query)
        restricted = Optimizer(
            registry, ExecutionTimeMetric(),
            OptimizerConfig(
                k=K, cache_setting=CacheSetting.ONE_CALL, most_cogent_only=True
            ),
        ).optimize(travel_query)
        assert restricted.cost == pytest.approx(full.cost)
        assert (
            restricted.stats.pattern_sequences_considered
            <= full.stats.pattern_sequences_considered
        )
        lines = [
            "Phase-1 ablation: 'bound is better' (most cogent only)",
            "",
            f"full search:  {full.stats.summary()}",
            f"restricted:   {restricted.stats.summary()}",
            f"both reach cost {full.cost:.1f}",
        ]
        write_artifact(out_dir, "ablation_phase1.txt", "\n".join(lines))


class TestWsmsComparison:
    def test_wsms_gap(self, registry, travel_query, out_dir):
        from repro.optimizer.fetches import FetchContext as Context

        etm = ExecutionTimeMetric()
        wsms = wsms_optimize(travel_query, registry)
        context = Context(wsms.plan, etm, CacheSetting.ONE_CALL)
        charged = exhaustive_assignment(context, K)
        ours = Optimizer(
            registry, etm, OptimizerConfig(k=K, cache_setting=CacheSetting.ONE_CALL)
        ).optimize(travel_query)
        assert ours.cost <= charged.cost + 1e-9
        lines = [
            "WSMS baseline (Srivastava et al. [16]) vs this paper's optimizer",
            "",
            f"WSMS chain (order {wsms.order}), charged fetches for k={K}: "
            f"ETM {charged.cost:.1f}",
            f"our optimizer (parallel joins + fetch tuning):      "
            f"ETM {ours.cost:.1f}",
            "",
            "WSMS models neither chunking nor ranking, so its pipelined",
            "chain cannot exploit the weather filter before both search",
            "services the way plan O does.",
        ]
        write_artifact(out_dir, "ablation_wsms.txt", "\n".join(lines))
