"""Figure 8 — the fully instantiated physical access plan.

Regenerates every annotation of the figure: the fetching factors from
Eq. 6 (F_flight=3, F_hotel=4 at k=10), the per-node t_in/t_out values,
and the merge-scan join's 1500 candidate pairs shrinking to 15 expected
answers under the estimated join erspi of 0.01.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.fetches import FetchContext, closed_form_pair
from repro.plans.annotate import annotate
from repro.plans.builder import PlanBuilder
from repro.plans.render import render_ascii
from repro.sources.travel import (
    CONF_ATOM,
    FLIGHT_ATOM,
    HOTEL_ATOM,
    WEATHER_ATOM,
    alpha1_patterns,
    poset_optimal,
)

pytestmark = pytest.mark.bench

PAPER_VALUES = {
    # atom index: (t_in as calls, t_out)
    CONF_ATOM: (1, 20),
    WEATHER_ATOM: (20, 1),
    FLIGHT_ATOM: (1, 75),
    HOTEL_ATOM: (1, 20),
}


def _build_and_annotate(registry, travel_query):
    builder = PlanBuilder(travel_query, registry)
    plan = builder.build(alpha1_patterns(), poset_optimal())
    context = FetchContext(plan, ExecutionTimeMetric(), CacheSetting.ONE_CALL)
    fetch_result = closed_form_pair(context, k=10)
    context.apply(fetch_result.fetches)
    annotation = annotate(plan, CacheSetting.ONE_CALL)
    return plan, fetch_result, annotation


class TestFigure8:
    def test_bench_annotation_pipeline(
        self, benchmark, registry, travel_query, out_dir
    ):
        plan, fetch_result, annotation = benchmark(
            _build_and_annotate, registry, travel_query
        )
        assert annotation.output_size == pytest.approx(15.0)
        self.test_all_annotations(registry, travel_query, out_dir)

    def test_fetching_factors(self, registry, travel_query):
        _, fetch_result, _ = _build_and_annotate(registry, travel_query)
        assert fetch_result.fetches == {FLIGHT_ATOM: 3, HOTEL_ATOM: 4}

    def test_all_annotations(self, registry, travel_query, out_dir):
        plan, fetch_result, annotation = _build_and_annotate(
            registry, travel_query
        )
        for atom_index, (calls, t_out) in PAPER_VALUES.items():
            node = plan.service_node_for_atom(atom_index)
            assert annotation.calls(node) == pytest.approx(calls), atom_index
            assert annotation.tuples_out(node) == pytest.approx(t_out), atom_index
        join = plan.join_nodes[0]
        assert annotation.tuples_in(join) == pytest.approx(1500)
        assert annotation.tuples_out(join) == pytest.approx(15)

        lines = [
            "Figure 8 — annotated physical access plan (k=10, one-call cache)",
            "",
            render_ascii(plan, annotation),
            "",
            f"Fetching factors (Eq. 6): {fetch_result.fetches}",
            "Paper: F_flight=3, F_hotel=4; t_MS: 1500 in -> 15 out;",
            "       t_in/t_out per node as asserted above — exact match.",
        ]
        write_artifact(out_dir, "figure8_annotation.txt", "\n".join(lines))
