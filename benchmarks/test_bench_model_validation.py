"""Cost-model validation (ours): predicted cost vs executed time.

The optimizer chooses plans from *estimates* (profiles, Eq. 2 call
counts, Eq. 4 times).  This experiment executes every one of the 19
topologies of the running example and correlates the ETM estimate with
the actually simulated elapsed time: the model is useful if its
*ranking* of plans matches reality — absolute values cannot match
because profiles are averages (the conf profile says 20 tuples per
topic; the 'DB' call actually returns 71, as in the paper)."""

import pytest
from scipy import stats as scipy_stats

from benchmarks.conftest import write_artifact
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.optimizer.fetches import FetchContext, exhaustive_assignment
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.builder import PlanBuilder
from repro.plans.render import summarize
from repro.sources.travel import alpha1_patterns

pytestmark = pytest.mark.bench

K = 10


def _evaluate_all(registry, travel_query):
    metric = ExecutionTimeMetric()
    builder = PlanBuilder(travel_query, registry)
    rows = []
    for poset in TopologyEnumerator(travel_query, alpha1_patterns()).all_posets():
        plan = builder.build(alpha1_patterns(), poset)
        context = FetchContext(plan, metric, CacheSetting.ONE_CALL)
        fetch_result = exhaustive_assignment(context, K)
        context.apply(fetch_result.fetches)
        predicted = fetch_result.cost
        engine = ExecutionEngine(
            registry, cache_setting=CacheSetting.ONE_CALL,
            mode=ExecutionMode.PARALLEL,
        )
        outcome = engine.execute(plan, head=travel_query.head, k=K)
        rows.append((plan, predicted, outcome.elapsed, len(outcome.rows)))
    return rows


class TestModelValidation:
    @pytest.fixture(scope="class")
    def evaluated(self, request):
        from repro.sources.travel import running_example_query, travel_registry

        return _evaluate_all(travel_registry(), running_example_query())

    def test_bench_predict_and_execute(self, benchmark, registry, travel_query):
        # Benchmark a single predict+execute round trip (plan O).
        from repro.sources.travel import poset_optimal

        builder = PlanBuilder(travel_query, registry)

        def round_trip():
            plan = builder.build(
                alpha1_patterns(), poset_optimal(), fetches={0: 3, 1: 4}
            )
            engine = ExecutionEngine(registry, CacheSetting.ONE_CALL)
            return engine.execute(plan, head=travel_query.head, k=K)

        outcome = benchmark(round_trip)
        assert outcome.rows

    def test_rank_correlation_is_strong(self, evaluated):
        predicted = [row[1] for row in evaluated]
        actual = [row[2] for row in evaluated]
        rho, _ = scipy_stats.spearmanr(predicted, actual)
        assert rho > 0.5

    def test_predicted_best_is_actually_fast(self, evaluated):
        by_predicted = sorted(evaluated, key=lambda row: row[1])
        by_actual = sorted(evaluated, key=lambda row: row[2])
        best_predicted_plan = by_predicted[0][0]
        top_actual = {id(row[0]) for row in by_actual[:3]}
        assert id(best_predicted_plan) in top_actual

    def test_write_validation_table(self, evaluated, out_dir):
        predicted = [row[1] for row in evaluated]
        actual = [row[2] for row in evaluated]
        rho, _ = scipy_stats.spearmanr(predicted, actual)
        lines = [
            "Cost-model validation: ETM estimate vs simulated elapsed time",
            f"(19 topologies of the running example, k={K}, one-call cache)",
            "",
            f"{'predicted':>10} {'actual':>9} {'answers':>8}  plan",
        ]
        for plan, pred, act, answers in sorted(evaluated, key=lambda r: r[1]):
            lines.append(
                f"{pred:>10.1f} {act:>9.1f} {answers:>8}  {summarize(plan)}"
            )
        lines += ["", f"Spearman rank correlation: {rho:.3f}"]
        write_artifact(out_dir, "model_validation.txt", "\n".join(lines))
