"""Multi-tenant serving trajectory (``BENCH_serving.json``).

Replays a Zipf-distributed stream of query-template instances from the
four built-in domains (travel, news, bio, weekend) against the serving
layer and measures what the subsystem was built to amortize:

* **plan-cache hit rate** — the fraction of submissions answered
  without running the branch-and-bound optimizer (one shared
  :class:`~repro.serving.plan_cache.PlanCache` spans all four domain
  services: keys embed each registry's content epoch, so entries never
  cross tenants);
* **optimizer work saved** — total ``annotate`` calls, the search's
  unit of work, versus the no-cache baseline that re-optimizes every
  submission;
* **service calls saved** — remote calls under the shared logical
  cache versus the baseline's per-request private caches;
* **throughput** — wall-clock submissions/s, warm versus cold;
* **restart warmth** — a second fleet pointed at the same plan-cache
  file starts with zero misses (the disk tier);
* **concurrency** — N worker threads replay the same Zipf stream
  round-robin against one shared fleet over the SQLite WAL tier; every
  answer must be bit-identical to the sequential cold oracle and the
  plan-cache accounting must match the sequential schedule exactly
  (single-flight: misses == distinct templates touched, for any N);
  each sweep point also records p50/p95/p99 per-request wall latency —
  the tail is what concurrent tenants feel, and a mean would hide
  single-flight stalls behind the cache-hit majority.

Every distinct template is also verified differentially: the warm
fleet's answer (plan rebuilt from the cached spec, pages largely from
the shared cache) must be bit-identical — rows, composed ranks,
per-service rank values, completeness — to a cold submit on a fresh
service with empty caches.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest
from _bench_env import QUICK, bench_out_name, bench_scale

from repro.serving import PlanCache, QueryService
from repro.sources.bio import bio_registry, glycolysis_homolog_query
from repro.sources.news import market_moving_news_query, news_registry
from repro.sources.travel import running_example_query, travel_registry
from repro.sources.weekend import mahler_weekend_query, weekend_registry

pytestmark = pytest.mark.bench

REQUESTS = bench_scale(300, 80)
K = 5
ZIPF_EXPONENT = 1.1
SEED = 20080824
WORKER_COUNTS = bench_scale((1, 2, 4, 8), (1, 4))

_REGISTRIES = {
    "travel": travel_registry,
    "news": news_registry,
    "bio": bio_registry,
    "weekend": weekend_registry,
}


def _templates() -> list[tuple[str, str, object]]:
    """(domain, label, query) for every distinct template instance."""
    population: list[tuple[str, str, object]] = [
        ("travel", "travel/showcase", running_example_query()),
        ("bio", "bio/glycolysis", glycolysis_homolog_query()),
    ]
    for topic in ("merger", "earnings", "recall", "lawsuit"):
        for sector in ("tech", "energy"):
            population.append(
                (
                    "news",
                    f"news/{topic}-{sector}",
                    market_moving_news_query(topic, sector),
                )
            )
    for budget in (100, 120, 150):
        population.append(
            ("weekend", f"weekend/b{budget}", mahler_weekend_query(budget))
        )
    return population


def _zipf_stream(population_size: int, requests: int) -> list[int]:
    """A seeded Zipf-distributed index stream over the population."""
    rng = random.Random(SEED)
    order = list(range(population_size))
    rng.shuffle(order)  # which template is popular is itself random
    weights = [
        1.0 / (order.index(i) + 1) ** ZIPF_EXPONENT
        for i in range(population_size)
    ]
    return rng.choices(range(population_size), weights=weights, k=requests)


def _fleet(plan_cache: PlanCache) -> dict[str, QueryService]:
    """One QueryService per domain, all sharing *plan_cache*."""
    return {
        domain: QueryService(
            registry=build(), k_default=K, plan_cache=plan_cache
        )
        for domain, build in _REGISTRIES.items()
    }


def _baseline_fleet() -> dict[str, QueryService]:
    """No plan cache, no shared service cache: every submit is cold."""
    return {
        domain: QueryService(
            registry=build(),
            k_default=K,
            plan_cache=PlanCache(capacity=0),
            share_service_cache=False,
        )
        for domain, build in _REGISTRIES.items()
    }


def _replay(fleet, population, stream) -> dict:
    service_calls = 0
    page_fetches = 0
    annotate_calls = 0
    start = time.perf_counter()
    for index in stream:
        domain, _, query = population[index]
        response = fleet[domain].submit(query, k=K)
        service_calls += response.stats["service_calls"]
        page_fetches += response.stats["page_fetches"]
        annotate_calls += response.stats["annotate_calls"]
    elapsed = max(time.perf_counter() - start, 1e-9)
    return {
        "requests": len(stream),
        "service_calls": service_calls,
        "page_fetches": page_fetches,
        "optimizer_annotate_calls": annotate_calls,
        "wall_s": round(elapsed, 3),
        "requests_per_s": round(len(stream) / elapsed, 1),
    }


def _answer_signature(response):
    return (
        response.columns,
        response.rows,
        response.rank_keys,
        tuple(
            tuple(rank for _, rank in row_ranks) for row_ranks in response.ranks
        ),
        response.complete,
    )


def _remove_sqlite_files(path):
    for suffix in ("", "-wal", "-shm"):
        sibling = path.parent / (path.name + suffix)
        if sibling.exists():
            sibling.unlink()


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted per-request latencies."""
    rank = max(0, min(len(sorted_values) - 1,
                      int(fraction * len(sorted_values) + 0.5) - 1))
    return sorted_values[rank]


def _threaded_replay(fleet, population, stream, workers) -> dict:
    """Replay *stream* round-robin across *workers* barrier-started
    threads against one shared fleet; returns timing (throughput plus
    p50/p95/p99 per-request latency — tail latency is what concurrent
    tenants feel, and a mean hides single-flight stalls behind cache
    hits) and the answer signature of every request, indexed by
    position in the stream."""
    signatures: list = [None] * len(stream)
    latencies: list[float] = [0.0] * len(stream)
    barrier = threading.Barrier(workers)
    errors: list[BaseException] = []

    def run(worker_index):
        try:
            barrier.wait()
            for position in range(worker_index, len(stream), workers):
                domain, _, query = population[stream[position]]
                begun = time.perf_counter()
                response = fleet[domain].submit(query, k=K)
                latencies[position] = time.perf_counter() - begun
                signatures[position] = _answer_signature(response)
        except BaseException as error:  # pragma: no cover - fail loudly
            errors.append(error)

    threads = [
        threading.Thread(target=run, args=(index,), name=f"bench-w{index}")
        for index in range(workers)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = max(time.perf_counter() - start, 1e-9)
    if errors:
        raise errors[0]
    ordered = sorted(latencies)
    return {
        "workers": workers,
        "requests": len(stream),
        "wall_s": round(elapsed, 3),
        "requests_per_s": round(len(stream) / elapsed, 1),
        "latency_ms": {
            "p50": round(_percentile(ordered, 0.50) * 1000, 3),
            "p95": round(_percentile(ordered, 0.95) * 1000, 3),
            "p99": round(_percentile(ordered, 0.99) * 1000, 3),
        },
        "signatures": signatures,
    }


class TestServingTrajectory:
    def test_write_bench_serving(self, out_dir):
        population = _templates()
        stream = _zipf_stream(len(population), REQUESTS)
        touched = sorted({index for index in stream})

        # Cold baseline: every submission optimizes and fetches afresh.
        cold = _replay(_baseline_fleet(), population, stream)

        # Warm fleet: shared persistent plan cache + shared service
        # caches.  The cache file starts absent so the run is
        # reproducible.
        cache_path = out_dir / "plan_cache_serving.json"
        if cache_path.exists():
            cache_path.unlink()
        plan_cache = PlanCache(path=cache_path)
        fleet = _fleet(plan_cache)
        warm = _replay(fleet, population, stream)
        warm["plan_cache"] = plan_cache.stats.to_dict()
        hit_rate = plan_cache.stats.hit_rate

        # Restarted fleet: fresh processes, same plan-cache file.
        restarted_cache = PlanCache(path=cache_path)
        restarted = _replay(_fleet(restarted_cache), population, stream)
        restarted["plan_cache"] = restarted_cache.stats.to_dict()

        # Differential: warm answers are bit-identical to cold ones.
        # The cold signatures double as the sequential oracle for the
        # concurrency sweep below (answers are a pure function of
        # registry content, query, and k).
        fresh = _baseline_fleet()
        oracle: dict[int, tuple] = {}
        for index in touched:
            domain, label, query = population[index]
            warm_answer = fleet[domain].submit(query, k=K)
            assert warm_answer.provenance == "memory", label
            cold_answer = fresh[domain].submit(query, k=K)
            oracle[index] = _answer_signature(cold_answer)
            assert _answer_signature(warm_answer) == oracle[
                index
            ], f"warm answer diverged from cold for {label}"

        # The acceptance criteria of the subsystem.
        assert hit_rate >= 0.8, f"warm hit rate {hit_rate:.2%} below 80%"
        assert (
            warm["optimizer_annotate_calls"]
            < cold["optimizer_annotate_calls"]
        )
        assert warm["service_calls"] < cold["service_calls"]
        assert restarted_cache.stats.misses == 0, "disk tier must start warm"

        # Concurrency sweep: N threads share one fleet over the SQLite
        # WAL tier.  Bit-identity and sequential accounting must hold
        # for every worker count.
        sweep = []
        sqlite_path = None
        for workers in WORKER_COUNTS:
            sqlite_path = out_dir / f"plan_cache_serving_w{workers}.sqlite"
            _remove_sqlite_files(sqlite_path)
            swept_cache = PlanCache(path=sqlite_path)
            swept_fleet = _fleet(swept_cache)
            run = _threaded_replay(swept_fleet, population, stream, workers)
            for position, signature in enumerate(run.pop("signatures")):
                assert signature == oracle[stream[position]], (
                    f"answer diverged from sequential oracle at request "
                    f"{position} with {workers} workers"
                )
            # Single-flight pins the accounting to the sequential
            # schedule: one miss (and one optimize) per touched
            # template, independent of the thread count.
            assert swept_cache.stats.lookups == REQUESTS
            assert swept_cache.stats.misses == len(touched)
            assert sum(
                s.stats.optimizer_runs for s in swept_fleet.values()
            ) == len(touched)
            if not QUICK:
                assert swept_cache.stats.hit_rate >= 0.95, (
                    f"hit rate regressed: {swept_cache.stats.hit_rate:.2%}"
                )
            percentiles = run["latency_ms"]
            assert 0 < percentiles["p50"] <= percentiles["p95"] <= (
                percentiles["p99"]
            )
            run["plan_cache"] = swept_cache.stats.to_dict()
            run["hit_rate"] = round(swept_cache.stats.hit_rate, 4)
            run["backend"] = swept_cache.backend_name
            sweep.append(run)
            swept_cache.close()

        # Restart-from-SQLite warm start: a fresh fleet over the last
        # sweep's database replays every touched template with zero
        # misses and zero optimizer runs.
        warm_start_cache = PlanCache(path=sqlite_path)
        warm_start_fleet = _fleet(warm_start_cache)
        for index in touched:
            domain, label, query = population[index]
            response = warm_start_fleet[domain].submit(query, k=K)
            assert response.provenance == "disk", label
            assert _answer_signature(response) == oracle[index], label
        assert warm_start_cache.stats.misses == 0, (
            "SQLite tier must start warm after restart"
        )
        warm_start = {
            "backend": warm_start_cache.backend_name,
            "requests": len(touched),
            "plan_cache": warm_start_cache.stats.to_dict(),
        }
        warm_start_cache.close()

        payload = {
            "bench": "serving",
            "quick": QUICK,
            "workload": {
                "requests": REQUESTS,
                "k": K,
                "distinct_templates": len(population),
                "templates_touched": len(touched),
                "zipf_exponent": ZIPF_EXPONENT,
                "domains": sorted(_REGISTRIES),
                "baseline": "per-request optimization, no plan cache, "
                "private service caches",
            },
            "cold_baseline": cold,
            "warm_fleet": warm,
            "restarted_fleet": restarted,
            "concurrency": {
                "worker_counts": list(WORKER_COUNTS),
                "backend": "sqlite",
                "sweep": sweep,
                "restart_from_sqlite": warm_start,
            },
            "savings": {
                "plan_cache_hit_rate": round(hit_rate, 4),
                "optimizer_annotate_calls_saved": (
                    cold["optimizer_annotate_calls"]
                    - warm["optimizer_annotate_calls"]
                ),
                "service_calls_saved": (
                    cold["service_calls"] - warm["service_calls"]
                ),
                "throughput_speedup": round(
                    warm["requests_per_s"] / cold["requests_per_s"], 2
                ),
            },
        }
        (out_dir / bench_out_name("BENCH_serving.json")).write_text(
            json.dumps(payload, indent=2) + "\n"
        )

    def test_bench_serving_warm_submit(self, benchmark):
        service = QueryService(registry=news_registry(), k_default=K)
        query = market_moving_news_query()
        service.submit(query, k=K)  # prime plan + service caches
        response = benchmark(lambda: service.submit(query, k=K))
        assert response.provenance == "memory"
        assert response.stats["service_calls"] == 0
