"""Figure 7 / Example 5.1 — the plan space of the running example.

Once conf is forced first by the α1 access patterns, the remaining
three atoms admit exactly 19 alternative plans (the partial orders on
three elements).  This benchmark enumerates and costs all of them under
the execution-time metric, regenerating the comparison the paper walks
through: the serial plan (a), the pruned prefix (b), the all-parallel
plan (c), and the optimal plan (d) = Figure 8's plan O.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.costs.time_cost import ExecutionTimeMetric
from repro.execution.cache import CacheSetting
from repro.optimizer.fetches import FetchContext, exhaustive_assignment
from repro.optimizer.topology import TopologyEnumerator
from repro.plans.builder import PlanBuilder
from repro.plans.render import summarize
from repro.sources.travel import (
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
)

pytestmark = pytest.mark.bench

K = 10


def _cost_all_topologies(registry, travel_query):
    metric = ExecutionTimeMetric()
    builder = PlanBuilder(travel_query, registry)
    posets = TopologyEnumerator(travel_query, alpha1_patterns()).all_posets()
    rows = []
    for poset in posets:
        plan = builder.build(alpha1_patterns(), poset)
        context = FetchContext(plan, metric, CacheSetting.ONE_CALL)
        result = exhaustive_assignment(context, K)
        rows.append((poset, plan, result))
    return rows


@pytest.fixture()
def costed(registry, travel_query):
    return _cost_all_topologies(registry, travel_query)


class TestFigure7:
    def test_bench_plan_space_costing(
        self, benchmark, registry, travel_query, out_dir
    ):
        rows = benchmark(_cost_all_topologies, registry, travel_query)
        assert len(rows) == 19
        self.test_write_figure7_table(rows, out_dir)

    def test_exactly_19_plans(self, costed):
        assert len(costed) == 19

    def test_plan_o_is_the_cheapest_feasible(self, costed):
        feasible = [row for row in costed if row[2].feasible]
        best = min(feasible, key=lambda row: row[2].cost)
        assert best[0].closure() == poset_optimal().closure()

    def test_parallel_plan_is_among_the_worst(self, costed):
        """Plan P 'turns out to be the worst choice, since the
        selective effect of weather is lost' (Section 6): under ETM it
        costs several times the optimum."""
        by_closure = {row[0].closure(): row[2].cost for row in costed}
        best = min(by_closure.values())
        parallel_cost = by_closure[poset_parallel().closure()]
        assert parallel_cost > 3 * best

    def test_serial_beats_parallel_under_etm(self, costed):
        by_closure = {row[0].closure(): row[2].cost for row in costed}
        assert (
            by_closure[poset_serial().closure()]
            < by_closure[poset_parallel().closure()]
        )

    def test_write_figure7_table(self, costed, out_dir):
        named = {
            poset_serial().closure(): "S (Fig. 7a)",
            poset_parallel().closure(): "P (Fig. 7c)",
            poset_optimal().closure(): "O (Fig. 7d)",
        }
        lines = [
            f"Figure 7 / Example 5.1 — all 19 plans for α1, ETM, k={K}",
            "",
            f"{'rank':<5} {'cost':>8} {'h':>7} {'fetches':<14} plan",
        ]
        ordered = sorted(costed, key=lambda row: row[2].cost)
        for rank, (poset, plan, result) in enumerate(ordered, start=1):
            tag = named.get(poset.closure(), "")
            fetch_text = ",".join(
                f"F{i}={f}" for i, f in sorted(result.fetches.items())
            )
            lines.append(
                f"{rank:<5} {result.cost:>8.1f} {result.output_size:>7.2f} "
                f"{fetch_text:<14} {summarize(plan)}  {tag}"
            )
        write_artifact(out_dir, "figure7_plan_space.txt", "\n".join(lines))
