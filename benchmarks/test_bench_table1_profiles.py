"""Table 1 — characterization of the example services.

Regenerates the paper's service-profile table by *sampling* the
simulated services, exactly as the paper's registration process does
("Profiling information is derived from several test queries that have
been individually issued to the different services").

Paper's values: conf exact, avg size 20, τ 1.2; weather exact, avg size
0.05 (with the 28 °C filter folded in), τ 1.5; flight search, chunk 25,
τ 9.7; hotel search, chunk 5, τ 4.9.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.model.schema import AccessPattern
from repro.services.profiler import ServiceProfiler, format_profile_table
from repro.sources.world import OTHER_TOPIC_SIZES, city_dates

pytestmark = pytest.mark.bench


def _profile_all(registry, world):
    registry.reset_all()  # probe against cold remote-side caches
    estimates = []
    # conf probed over the non-DB topics (mean size 20, as in Table 1).
    conf_samples = [{0: topic} for topic in OTHER_TOPIC_SIZES]
    estimates.append(
        ServiceProfiler(registry.service("conf")).estimate(
            AccessPattern("ioooo"), conf_samples
        )
    )
    # weather probed over sample cities.
    weather_samples = []
    for city in world.all_cities[:20]:
        start, _ = city_dates(city)
        weather_samples.append({0: city, 2: start})
    estimates.append(
        ServiceProfiler(registry.service("weather")).estimate(
            AccessPattern("ioi"), weather_samples
        )
    )
    # flight and hotel probed over hot-city routes, plus the deep
    # Amsterdam route whose fare list exceeds one chunk.
    from repro.sources.world import DEEP_ROUTE_CITY

    flight_samples = []
    hotel_samples = []
    for city in list(world.hot_cities[:5]) + [DEEP_ROUTE_CITY]:
        start, end = city_dates(city)
        flight_samples.append({0: "Milano", 1: city, 2: start, 3: end})
        hotel_samples.append({1: city, 2: "luxury", 3: start, 4: end})
    estimates.append(
        ServiceProfiler(registry.service("flight")).estimate(
            AccessPattern("iiiiooo"), flight_samples
        )
    )
    estimates.append(
        ServiceProfiler(registry.service("hotel")).estimate(
            AccessPattern("oiiiio"), hotel_samples
        )
    )
    return estimates


@pytest.fixture()
def estimates(registry, world):
    return _profile_all(registry, world)


class TestTable1:
    def test_bench_profiling(self, benchmark, registry, world, out_dir):
        estimates = benchmark(_profile_all, registry, world)
        assert len(estimates) == 4
        self._check_and_write(estimates, registry, out_dir)

    def test_table_shape_matches_paper(self, estimates, registry, out_dir):
        self._check_and_write(estimates, registry, out_dir)

    @staticmethod
    def _check_and_write(estimates, registry, out_dir):
        by_name = {e.service: e for e in estimates}
        # conf: exact, mean response size 20 over the probe topics.
        assert by_name["conf"].chunk_size is None
        assert by_name["conf"].average_result_size == pytest.approx(20.0)
        assert by_name["conf"].average_response_time == pytest.approx(1.2)
        # weather: exact, one tuple per (city, date); the paper's 0.05
        # folds in the temperature filter, which the optimizer carries
        # as an explicit predicate selectivity instead.
        assert by_name["weather"].average_result_size == pytest.approx(1.0)
        assert by_name["weather"].average_response_time == pytest.approx(1.5)
        # flight: search, chunk 25; hotel: search, chunk 5.
        assert by_name["flight"].chunk_size == 25
        assert by_name["flight"].average_response_time == pytest.approx(9.7)
        assert by_name["hotel"].chunk_size == 5
        assert by_name["hotel"].average_response_time == pytest.approx(4.9)

        lines = [
            "Table 1 — measured service profiles (sampling probe)",
            "",
            format_profile_table(estimates),
            "",
            "Registered profiles used by the optimizer:",
        ]
        for name in ("conf", "weather", "flight", "hotel"):
            lines.append(f"  {name:<8} {registry.profile(name).describe()}")
        lines += [
            "",
            "Paper (Table 1): conf exact -/20/1.2s; weather exact -/0.05/1.5s;",
            "                 flight search 25/-/9.7s; hotel search 5/-/4.9s.",
            "Note: the paper's 0.05 for weather is the erspi *after* the",
            "Temperature >= 28 selection; we model the raw erspi (1.0) and",
            "attach selectivity 0.05 to the predicate, so the annotated",
            "product matches Figure 8 exactly.",
        ]
        write_artifact(out_dir, "table1_profiles.txt", "\n".join(lines))

    def test_effective_weather_erspi_with_filter(self, registry, world):
        """The filtered erspi the paper reports: fraction of probed
        cities at >= 28°C, times one tuple per call."""
        from repro.sources.world import city_temperature

        sample = world.all_cities
        hot_fraction = sum(
            1 for city in sample if city_temperature(city) >= 28
        ) / len(sample)
        # 11 hot cities out of 54: about 0.2 (the paper measured 0.05 on
        # its own probe set; the order of magnitude is what matters).
        assert 0.05 <= hot_fraction <= 0.35
