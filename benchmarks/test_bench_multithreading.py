"""Section 6's multithreading experiment.

Dispatching all available calls of each node to parallel threads
collapses plan S's elapsed time (the paper measures 76 s vs 374 s) but
randomizes arrival order, degrading the one-call cache: the paper's
hotel calls go from 15 (ordered) back up to 212 of the 284.  The
optimal cache suffers no such drawback.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_serial,
)

pytestmark = pytest.mark.bench


def _serial_plan(registry, travel_query):
    return PlanBuilder(travel_query, registry).build(
        alpha1_patterns(), poset_serial(),
        fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
    )


def _run(registry, travel_query, plan, cache, mode):
    engine = ExecutionEngine(registry, cache_setting=cache, mode=mode)
    return engine.execute(plan, head=travel_query.head, k=10)


class TestMultithreading:
    def test_bench_threaded_execution(
        self, benchmark, registry, travel_query, out_dir
    ):
        plan = _serial_plan(registry, travel_query)
        result = benchmark(
            _run, registry, travel_query, plan,
            CacheSetting.ONE_CALL, ExecutionMode.MULTITHREADED,
        )
        assert result.rows
        self.test_speedup_and_cache_degradation(registry, travel_query, out_dir)

    def test_speedup_and_cache_degradation(self, registry, travel_query, out_dir):
        plan = _serial_plan(registry, travel_query)
        cells = {}
        for cache in (CacheSetting.NO_CACHE, CacheSetting.ONE_CALL,
                      CacheSetting.OPTIMAL):
            for mode in (ExecutionMode.PARALLEL, ExecutionMode.MULTITHREADED):
                cells[(cache.value, mode.value)] = _run(
                    registry, travel_query, plan, cache, mode
                )

        ordered = cells[("one-call", "parallel")]
        threaded = cells[("one-call", "multithreaded")]
        assert ordered.stats.calls("hotel") == 15
        degraded = threaded.stats.calls("hotel")
        assert 15 < degraded <= 284  # paper: 212 of 284

        no_cache_ordered = cells[("no-cache", "parallel")]
        no_cache_threaded = cells[("no-cache", "multithreaded")]
        assert no_cache_threaded.elapsed < no_cache_ordered.elapsed / 3

        optimal_ordered = cells[("optimal", "parallel")]
        optimal_threaded = cells[("optimal", "multithreaded")]
        assert optimal_threaded.stats.calls("hotel") == optimal_ordered.stats.calls(
            "hotel"
        )

        lines = [
            "Multithreading experiment (plan S)",
            "",
            f"{'cache':<10} {'mode':<15} {'hotel calls':>12} {'time[s]':>9}",
        ]
        for (cache, mode), outcome in sorted(cells.items()):
            lines.append(
                f"{cache:<10} {mode:<15} {outcome.stats.calls('hotel'):>12} "
                f"{outcome.elapsed:>9.1f}"
            )
        lines += [
            "",
            "Paper: ordered one-call cache 15 hotel calls; threaded 212;",
            f"ours: ordered 15, threaded {degraded}.",
            "Paper: plan S drops from 374 s to 76 s with threads;",
            f"ours: {no_cache_ordered.elapsed:.0f} s -> "
            f"{no_cache_threaded.elapsed:.0f} s.",
            "The optimal cache suffers no drawback (same calls either way).",
        ]
        write_artifact(out_dir, "multithreading.txt", "\n".join(lines))
