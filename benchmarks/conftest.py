"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (Section 6) and writes its rendered output under
``benchmarks/out/`` so the regenerated artifacts can be inspected after
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.sources.travel import running_example_query, travel_registry
from repro.sources.world import build_world

# Quick-mode knobs (BENCH_QUICK, bench_scale, bench_out_name) live in
# ``_bench_env.py``; bench modules import them from there, never from
# ``conftest`` (whose module name collides with tests/conftest.py).

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def out_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(scope="session")
def world():
    return build_world()


@pytest.fixture()
def registry(world):
    return travel_registry(world)


@pytest.fixture()
def travel_query():
    return running_example_query()


def write_artifact(out_dir: pathlib.Path, name: str, content: str) -> None:
    """Persist a regenerated table/figure as text."""
    path = out_dir / name
    path.write_text(content + "\n")
