"""Figure 11 — the paper's main experiment.

Executes the serial plan S, the parallel plan P, and the optimal plan O
under the three logical-cache settings, regenerating both charts:

* calls per service (weather / flight / hotel) — matches the paper
  EXACTLY thanks to the calibrated world;
* total execution time — simulated from the Table 1 latencies; the
  orderings (O < S < P per setting; optimal ≤ one-call ≤ no-cache per
  plan) must reproduce; absolute seconds differ from the authors'
  testbed and are recorded in EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.execution.cache import CacheSetting
from repro.execution.engine import ExecutionEngine, ExecutionMode
from repro.plans.builder import PlanBuilder
from repro.sources.travel import (
    FLIGHT_ATOM,
    HOTEL_ATOM,
    alpha1_patterns,
    poset_optimal,
    poset_parallel,
    poset_serial,
)

pytestmark = pytest.mark.bench

PAPER_CALLS = {
    ("no-cache", "S"): (71, 16, 284),
    ("no-cache", "P"): (71, 71, 71),
    ("no-cache", "O"): (71, 16, 16),
    ("one-call", "S"): (71, 16, 15),
    ("one-call", "P"): (71, 71, 71),
    ("one-call", "O"): (71, 16, 16),
    ("optimal", "S"): (54, 11, 10),
    ("optimal", "P"): (54, 54, 54),
    ("optimal", "O"): (54, 11, 11),
}

PAPER_TIMES = {
    ("no-cache", "S"): 374, ("no-cache", "P"): 596, ("no-cache", "O"): 218,
    ("one-call", "S"): 266, ("one-call", "P"): 598, ("one-call", "O"): 219,
    ("optimal", "S"): 176, ("optimal", "P"): 512, ("optimal", "O"): 155,
}


def _plans(registry, travel_query):
    builder = PlanBuilder(travel_query, registry)
    return {
        "S": builder.build(
            alpha1_patterns(), poset_serial(),
            fetches={FLIGHT_ATOM: 1, HOTEL_ATOM: 8},
        ),
        "P": builder.build(
            alpha1_patterns(), poset_parallel(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
        "O": builder.build(
            alpha1_patterns(), poset_optimal(),
            fetches={FLIGHT_ATOM: 3, HOTEL_ATOM: 4},
        ),
    }


def _run_grid(registry, travel_query):
    outcomes = {}
    plans = _plans(registry, travel_query)
    for setting in CacheSetting:
        for name, plan in plans.items():
            engine = ExecutionEngine(
                registry, cache_setting=setting, mode=ExecutionMode.PARALLEL
            )
            outcomes[(setting.value, name)] = engine.execute(
                plan, head=travel_query.head, k=10
            )
    return outcomes


@pytest.fixture()
def grid(registry, travel_query):
    return _run_grid(registry, travel_query)


class TestFigure11:
    def test_bench_full_grid(self, benchmark, registry, travel_query, out_dir):
        outcomes = benchmark(_run_grid, registry, travel_query)
        assert len(outcomes) == 9
        for key, expected in PAPER_CALLS.items():
            stats = outcomes[key].stats
            assert (
                stats.calls("weather"), stats.calls("flight"),
                stats.calls("hotel"),
            ) == expected, key
        self.test_write_figure11(outcomes, out_dir)

    def test_bench_single_optimal_execution(self, benchmark, registry, travel_query):
        plan = _plans(registry, travel_query)["O"]

        def run():
            engine = ExecutionEngine(
                registry, cache_setting=CacheSetting.ONE_CALL
            )
            return engine.execute(plan, head=travel_query.head, k=10)

        result = benchmark(run)
        assert len(result.rows) >= 10

    @pytest.mark.parametrize("key", sorted(PAPER_CALLS), ids="-".join)
    def test_calls_exactly_match_paper(self, grid, key):
        stats = grid[key].stats
        assert (
            stats.calls("weather"), stats.calls("flight"), stats.calls("hotel")
        ) == PAPER_CALLS[key]

    def test_time_shape_matches_paper(self, grid):
        for setting in ("no-cache", "one-call", "optimal"):
            assert (
                grid[(setting, "O")].elapsed
                < grid[(setting, "S")].elapsed
                < grid[(setting, "P")].elapsed
            )
        for plan in ("S", "P", "O"):
            assert (
                grid[("optimal", plan)].elapsed
                <= grid[("one-call", plan)].elapsed + 1e-9
                <= grid[("no-cache", plan)].elapsed + 1e-9
            )

    def test_write_figure11(self, grid, out_dir):
        lines = [
            "Figure 11 — calls per service and total times",
            "",
            f"{'setting':<10} {'plan':<5} {'weather':>8} {'flight':>7} "
            f"{'hotel':>6} {'conf':>5} {'time[s]':>9} {'paper calls':>15} "
            f"{'paper[s]':>9}",
        ]
        for setting in ("no-cache", "one-call", "optimal"):
            for plan in ("S", "P", "O"):
                outcome = grid[(setting, plan)]
                stats = outcome.stats
                paper = PAPER_CALLS[(setting, plan)]
                lines.append(
                    f"{setting:<10} {plan:<5} {stats.calls('weather'):>8} "
                    f"{stats.calls('flight'):>7} {stats.calls('hotel'):>6} "
                    f"{stats.calls('conf'):>5} {outcome.elapsed:>9.1f} "
                    f"{str(paper):>15} {PAPER_TIMES[(setting, plan)]:>9}"
                )
        lines += [
            "",
            "Call counts match the paper exactly (calibrated world).",
            "Times are simulated from the Table 1 latencies; the paper's",
            "orderings hold: O < S < P per setting, and caching never",
            "slows a plan down.",
        ]
        write_artifact(out_dir, "figure11_cache_plans.txt", "\n".join(lines))
