"""Benchmark environment knobs, importable by bench modules.

Lives in its own uniquely-named module (not ``conftest.py``) because
pytest registers the first ``conftest.py`` it imports under
``sys.modules['conftest']`` — a bench module doing ``from conftest
import ...`` would resolve against ``tests/conftest.py`` whenever both
directories are collected in one pytest invocation.
"""

from __future__ import annotations

import os

#: ``run_bench.py --quick`` sets BENCH_QUICK=1: CI smoke runs that only
#: check the bench code still executes, on shrunken workloads.
QUICK = os.environ.get("BENCH_QUICK") == "1"


def bench_scale(full: int, quick: int) -> int:
    """Workload size: *quick* under ``run_bench.py --quick``."""
    return quick if QUICK else full


def bench_out_name(base: str) -> str:
    """Artifact filename for *base* (e.g. ``BENCH_streaming.json``).

    Quick runs write ``*.quick.json`` instead, so a CI smoke or a local
    ``--quick`` pass can never overwrite the committed full-run
    trajectories with shrunken-workload numbers.
    """
    if not QUICK:
        return base
    stem, _, extension = base.rpartition(".")
    return f"{stem}.quick.{extension}" if stem else f"{base}.quick"
